//! The Erlang-phase CTMC as a fourth, fully analytic CPU model backend.
//!
//! This is the answer to the paper's closing question ("if an effective
//! method of modeling constant delays in Markov chains can be derived, the
//! Markov model may very well become the modeling method of choice") turned
//! into a first-class [`CpuModel`]: both constant delays are expanded into
//! Erlang-`k` stages and the resulting CTMC is solved exactly. Unlike the
//! supplementary-variable model it stays accurate for large `D`; unlike the
//! simulations it is deterministic and fast (milliseconds, no Monte-Carlo
//! noise).

use std::time::Instant;

use wsnem_markov::PhaseCpuChain;

use crate::backend::{
    require_exponential_service, BackendId, Capabilities, CpuSolver, EvalOptions,
};
use crate::error::CoreError;
use crate::evaluation::{CpuModel, ModelEvaluation};
use crate::params::CpuModelParams;

/// Phase-expanded Markov model of the CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCpuModel {
    params: CpuModelParams,
    phases: u32,
}

impl PhaseCpuModel {
    /// Wrap the shared parameters with the default phase count (16 — below
    /// 0.25 pp error against DES across the paper's sweep, see the E7
    /// ablation).
    pub fn new(params: CpuModelParams) -> Self {
        Self { params, phases: 16 }
    }

    /// Override the Erlang phase count used for both delays.
    pub fn with_phases(mut self, phases: u32) -> Self {
        self.phases = phases;
        self
    }

    /// The parameters.
    pub fn params(&self) -> CpuModelParams {
        self.params
    }

    /// The configured phase count.
    pub fn phases(&self) -> u32 {
        self.phases
    }

    /// The underlying chain descriptor.
    pub fn chain(&self) -> Result<PhaseCpuChain, CoreError> {
        self.params.validate()?;
        Ok(PhaseCpuChain::new(
            self.params.lambda,
            self.params.mu,
            self.params.power_down_threshold,
            self.params.power_up_delay,
            self.phases,
            self.phases,
            0,
        )?)
    }
}

impl CpuModel for PhaseCpuModel {
    fn kind(&self) -> BackendId {
        BackendId::ErlangPhase
    }

    fn evaluate(&self) -> Result<ModelEvaluation, CoreError> {
        let start = Instant::now();
        let chain = self.chain()?;
        let fractions = chain.fractions()?;
        let mean_jobs = chain.mean_jobs()?;
        Ok(ModelEvaluation {
            kind: BackendId::ErlangPhase,
            fractions,
            mean_jobs: Some(mean_jobs),
            mean_latency: Some(mean_jobs / self.params.lambda),
            eval_seconds: start.elapsed().as_secs_f64(),
        })
    }
}

/// The registry solver for [`BackendId::ErlangPhase`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ErlangPhaseSolver;

impl CpuSolver for ErlangPhaseSolver {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            id: BackendId::ErlangPhase,
            analytic: true,
            ground_truth: false,
            assumes_poisson: true,
            supports_service_dist: false,
            provides_mean_jobs: true,
            provides_latency: true,
            uses_seed: false,
            requires_positive_delays: true,
            cost_rank: 2,
        }
    }

    fn solve(
        &self,
        params: &CpuModelParams,
        opts: &EvalOptions,
    ) -> Result<ModelEvaluation, CoreError> {
        require_exponential_service(BackendId::ErlangPhase, opts)?;
        PhaseCpuModel::new(opts.apply(*params)).evaluate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::des_model::DesCpuModel;
    use crate::models::markov_model::MarkovCpuModel;

    #[test]
    fn evaluates_and_normalizes() {
        let params = CpuModelParams::paper_defaults();
        let eval = PhaseCpuModel::new(params).evaluate().unwrap();
        assert!(eval.fractions.is_normalized(1e-9));
        assert!(eval.mean_jobs.unwrap() > 0.0);
        assert!(eval.eval_seconds < 1.0);
        let m = PhaseCpuModel::new(params).with_phases(4);
        assert_eq!(m.phases(), 4);
        assert_eq!(m.params().lambda, 1.0);
        assert!(m.chain().is_ok());
    }

    #[test]
    fn accurate_where_supplementary_variables_fail() {
        // D = 10 s: the phase model must stay near the DES truth while the
        // paper's approximation drifts by tens of points.
        let params = CpuModelParams::paper_defaults()
            .with_power_up_delay(10.0)
            .with_replications(8)
            .with_horizon(6000.0)
            .with_warmup(500.0);
        let des = DesCpuModel::new(params).evaluate().unwrap();
        let phase = PhaseCpuModel::new(params).evaluate().unwrap();
        let sv = MarkovCpuModel::new(params).evaluate().unwrap();
        let phase_err = des.fractions.mean_abs_delta_pct(&phase.fractions);
        let sv_err = des.fractions.mean_abs_delta_pct(&sv.fractions);
        assert!(phase_err < 2.0, "phase error {phase_err} pp");
        assert!(
            sv_err > 10.0 * phase_err,
            "sv {sv_err} vs phase {phase_err}"
        );
    }

    #[test]
    fn zero_delay_params_rejected_gracefully() {
        // Phase expansion needs strictly positive delays (documented).
        let params = CpuModelParams::paper_defaults().with_power_up_delay(0.0);
        assert!(PhaseCpuModel::new(params).evaluate().is_err());
    }

    #[test]
    fn more_phases_no_worse() {
        let params = CpuModelParams::paper_defaults()
            .with_power_up_delay(0.5)
            .with_replications(8)
            .with_horizon(6000.0)
            .with_warmup(300.0);
        let des = DesCpuModel::new(params).evaluate().unwrap();
        let e4 = des.fractions.mean_abs_delta_pct(
            &PhaseCpuModel::new(params)
                .with_phases(2)
                .evaluate()
                .unwrap()
                .fractions,
        );
        let e32 = des.fractions.mean_abs_delta_pct(
            &PhaseCpuModel::new(params)
                .with_phases(32)
                .evaluate()
                .unwrap()
                .fractions,
        );
        assert!(e32 < e4 + 0.2, "32 phases ({e32}) vs 2 phases ({e4})");
    }
}
