//! The CPU model implementations.

pub mod des_model;
pub mod markov_model;
pub mod mg1_model;
pub mod petri_model;
pub mod phase_model;
