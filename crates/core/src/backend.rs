//! The unified solver-backend API.
//!
//! Historically the workspace spelled "which backend" three different ways
//! (`ModelKind` in core, `CpuBackend` in wsn, `Backend` in the scenario
//! schema) with copy-pasted `match` dispatch at every call site. This module
//! collapses all of them into one [`BackendId`] plus an object-safe
//! [`CpuSolver`] trait, a per-backend [`Capabilities`] descriptor and a
//! [`BackendRegistry`] the rest of the workspace dispatches through — the
//! single place a new backend has to be wired in.
//!
//! ```
//! use wsnem_core::{backend, BackendId, CpuModelParams, EvalOptions};
//!
//! let registry = backend::global();
//! let eval = registry
//!     .solve(
//!         BackendId::Markov,
//!         &CpuModelParams::paper_defaults(),
//!         &EvalOptions::default(),
//!     )
//!     .unwrap();
//! assert_eq!(eval.kind, BackendId::Markov);
//! ```

use std::sync::OnceLock;

use wsnem_stats::dist::Dist;

use crate::error::CoreError;
use crate::evaluation::ModelEvaluation;
use crate::params::CpuModelParams;

/// Canonical identifier of a solver backend — the one name shared by the
/// core models, the node/network layer and the scenario schema (where the
/// deprecated `CpuBackend` and `Backend` aliases now point here).
///
/// Serialized as its canonical variant name (`"Markov"`, `"Mg1"`,
/// `"ErlangPhase"`, `"PetriNet"`, `"Des"`), so scenario files written
/// against earlier schema versions keep loading unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendId {
    /// Supplementary-variable closed forms (paper §4.1, Eqs. 1–24).
    Markov,
    /// Exact M/G/1 Pollaczek–Khinchine closed form — analytic occupancy and
    /// wait for any service-time law; the million-node fast path.
    Mg1,
    /// Erlang-phase CTMC expansion of the deterministic delays — analytic
    /// *and* accurate for large `D`.
    ErlangPhase,
    /// EDSPN token-game simulation (paper Fig. 3 / §4.2).
    PetriNet,
    /// Discrete-event simulation — the ground truth (the paper's Matlab
    /// benchmark).
    Des,
}

impl BackendId {
    /// Every backend, in canonical (cheapest-first) order.
    pub const ALL: [BackendId; 5] = [
        BackendId::Markov,
        BackendId::Mg1,
        BackendId::ErlangPhase,
        BackendId::PetriNet,
        BackendId::Des,
    ];

    /// Canonical name — stable across schema versions and used for
    /// serialization.
    pub fn name(self) -> &'static str {
        match self {
            BackendId::Markov => "Markov",
            BackendId::Mg1 => "Mg1",
            BackendId::ErlangPhase => "ErlangPhase",
            BackendId::PetriNet => "PetriNet",
            BackendId::Des => "Des",
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn paper_label(self) -> &'static str {
        match self {
            BackendId::Markov => "Markov",
            BackendId::Mg1 => "M/G/1",
            BackendId::ErlangPhase => "Erlang Phase",
            BackendId::PetriNet => "Petri Net",
            BackendId::Des => "Simulation",
        }
    }

    /// Parse a backend name leniently (case-insensitive, with the common
    /// aliases users type), producing a did-you-mean error listing the
    /// registered backends on failure.
    pub fn parse(name: &str) -> Result<Self, CoreError> {
        let folded: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        for id in Self::ALL {
            if folded == id.name().to_ascii_lowercase() {
                return Ok(id);
            }
        }
        match folded.as_str() {
            // "M/G/1", "m-g-1" etc. already fold onto the canonical "mg1".
            "pk" | "pollaczekkhinchine" => return Ok(BackendId::Mg1),
            "phase" | "erlang" => return Ok(BackendId::ErlangPhase),
            "petri" | "pn" | "edspn" => return Ok(BackendId::PetriNet),
            "sim" | "simulation" => return Ok(BackendId::Des),
            _ => {}
        }
        let registered: Vec<String> = global().ids().iter().map(|b| b.name().into()).collect();
        let did_you_mean = registered
            .iter()
            .map(|cand| (edit_distance(&folded, &cand.to_ascii_lowercase()), cand))
            .filter(|(d, cand)| *d <= cand.len().div_ceil(2))
            .min_by_key(|(d, _)| *d)
            .map(|(_, cand)| cand.clone());
        Err(CoreError::UnknownBackend {
            name: name.to_owned(),
            did_you_mean,
            registered,
        })
    }
}

impl std::fmt::Display for BackendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendId {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Levenshtein distance, for the did-you-mean suggestion.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

// Manual serde impls (instead of the derive) so unknown names fail with the
// registry-driven did-you-mean error rather than a bare "unknown variant".
#[cfg(feature = "serde")]
impl serde::Serialize for BackendId {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_owned())
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for BackendId {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => {
                BackendId::parse(s).map_err(|e| serde::Error::custom(e.to_string()))
            }
            other => Err(serde::Error::expected("backend name string", other)),
        }
    }
}

/// Serializable service-time distribution for [`EvalOptions`] — the knob
/// that unpins the schema's historical "exponential service at rate μ"
/// assumption for the backends whose [`Capabilities`] allow it.
///
/// Every variant except [`ServiceDist::General`] keeps the configured mean
/// service time `1/μ`, so backends stay comparable at equal utilization.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ServiceDist {
    /// Exponential service at rate μ — the paper's model; every backend
    /// supports it.
    #[default]
    Exponential,
    /// Constant service time `1/μ` (an M/D/1-style CPU).
    Deterministic,
    /// Erlang-`k` service with mean `1/μ` (variance `1/(k·μ²)`).
    Erlang {
        /// Number of phases (≥ 1).
        k: u32,
    },
    /// An arbitrary service-time distribution, given explicitly. The mean
    /// need not be `1/μ`; `μ` is ignored. Always treated as
    /// **non-exponential for capability gating** — even
    /// `General {{ Exponential }}`, whose rate may differ from `μ` — so an
    /// analytic backend can never silently solve at `μ` while the
    /// simulators honor a different rate. Use [`ServiceDist::Exponential`]
    /// to request the built-in service.
    General {
        /// The service-time distribution.
        dist: Dist,
    },
}

impl ServiceDist {
    /// True when this is exactly the exponential-at-μ service every backend
    /// models — i.e. the [`ServiceDist::Exponential`] variant. A
    /// [`ServiceDist::General`] exponential is deliberately *not* counted:
    /// its rate is free, and gating must never let backends disagree on
    /// which rate they solved (see the `General` docs).
    pub fn is_exponential(&self) -> bool {
        matches!(self, ServiceDist::Exponential)
    }

    /// Materialize the concrete distribution for service rate `mu`.
    pub fn to_dist(&self, mu: f64) -> Dist {
        match *self {
            ServiceDist::Exponential => Dist::Exponential { rate: mu },
            ServiceDist::Deterministic => Dist::Deterministic(1.0 / mu),
            ServiceDist::Erlang { k } => Dist::Erlang {
                k,
                rate: k as f64 * mu,
            },
            ServiceDist::General { dist } => dist,
        }
    }

    /// Validate (k ≥ 1, general distribution parameters in domain) for the
    /// given service rate.
    pub fn validate(&self, mu: f64) -> Result<(), CoreError> {
        if !(mu > 0.0) || !mu.is_finite() {
            return Err(CoreError::InvalidParameter {
                what: "mu",
                constraint: "> 0 and finite",
                value: mu,
            });
        }
        self.to_dist(mu)
            .validate()
            .map_err(|e| CoreError::InvalidService {
                detail: e.to_string(),
            })
    }

    /// Short display label for reports.
    pub fn label(&self) -> String {
        match self {
            ServiceDist::Exponential => "exponential".into(),
            ServiceDist::Deterministic => "deterministic".into(),
            ServiceDist::Erlang { k } => format!("erlang-{k}"),
            ServiceDist::General { dist } => format!("general ({dist:?})"),
        }
    }
}

/// Per-evaluation options shared by every backend: overrides for the
/// stochastic-run parameters plus the service-time distribution. `None`
/// fields fall back to the corresponding [`CpuModelParams`] values, so
/// `EvalOptions::default()` reproduces the historical behaviour exactly.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Master-seed override for the replication RNG streams.
    pub seed: Option<u64>,
    /// Replication-count override (simulation backends).
    pub replications: Option<usize>,
    /// Horizon override (s).
    pub horizon: Option<f64>,
    /// Warm-up override (s).
    pub warmup: Option<f64>,
    /// Worker-thread pin for replication fan-out (`None` = available
    /// parallelism; outer-parallel callers pass `Some(1)`).
    pub threads: Option<usize>,
    /// Service-time distribution. Backends whose [`Capabilities`] lack
    /// `supports_service_dist` reject non-exponential choices with
    /// [`CoreError::Unsupported`] — never a silent exponential fallback.
    pub service: ServiceDist,
    /// Arrival workload override for the ground-truth DES backend. Backends
    /// with `assumes_poisson` ignore it (their numbers are then the *Poisson
    /// approximation*, which callers flag; the scenario layer's agreement
    /// report quantifies the distortion).
    pub workload: Option<wsnem_des::Workload>,
}

impl EvalOptions {
    /// Override the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Override the replication count.
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = Some(replications);
        self
    }

    /// Override the horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Override the warm-up truncation.
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// Pin the replication worker-thread count.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Choose the service-time distribution.
    pub fn with_service(mut self, service: ServiceDist) -> Self {
        self.service = service;
        self
    }

    /// Set the DES arrival workload.
    pub fn with_workload(mut self, workload: Option<wsnem_des::Workload>) -> Self {
        self.workload = workload;
        self
    }

    /// Apply the overrides to a parameter set.
    pub fn apply(&self, params: CpuModelParams) -> CpuModelParams {
        let mut p = params;
        if let Some(seed) = self.seed {
            p.master_seed = seed;
        }
        if let Some(replications) = self.replications {
            p.replications = replications;
        }
        if let Some(horizon) = self.horizon {
            p.horizon = horizon;
        }
        if let Some(warmup) = self.warmup {
            p.warmup = warmup;
        }
        p
    }
}

/// What a backend can and cannot do — the machine-readable contract callers
/// dispatch on instead of matching on [`BackendId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Capabilities {
    /// The backend this describes.
    pub id: BackendId,
    /// Deterministic analytic/numeric solution (no Monte-Carlo noise, no
    /// seed sensitivity).
    pub analytic: bool,
    /// The evaluation the others are validated against (paper §5: the event
    /// simulator).
    pub ground_truth: bool,
    /// Models Poisson arrivals regardless of any workload override.
    pub assumes_poisson: bool,
    /// Accepts a non-exponential [`ServiceDist`]; backends without this
    /// return [`CoreError::Unsupported`] instead of wrong numbers.
    pub supports_service_dist: bool,
    /// Reports the mean number of jobs in the system.
    pub provides_mean_jobs: bool,
    /// Reports the mean per-job latency.
    pub provides_latency: bool,
    /// Consumes the seed/replication parameters (stochastic backends).
    pub uses_seed: bool,
    /// Needs strictly positive `T` and `D` (the Erlang-phase expansion
    /// cannot represent zero-length delays).
    pub requires_positive_delays: bool,
    /// Relative evaluation cost rank (0 = cheapest); callers picking "the
    /// cheapest requested backend" order by this instead of matching.
    pub cost_rank: u8,
}

/// An object-safe solver: evaluate the paper's CPU model under shared
/// parameters and per-evaluation options.
///
/// Implementing a new backend means one `impl CpuSolver` plus one
/// [`BackendRegistry::register`] call — no more match-arm hunting across
/// five files.
pub trait CpuSolver: Send + Sync {
    /// The backend's capability descriptor (including its [`BackendId`]).
    fn capabilities(&self) -> Capabilities;

    /// Evaluate the model.
    fn solve(
        &self,
        params: &CpuModelParams,
        opts: &EvalOptions,
    ) -> Result<ModelEvaluation, CoreError>;

    /// The backend's identifier (from [`CpuSolver::capabilities`]).
    fn id(&self) -> BackendId {
        self.capabilities().id
    }
}

/// The solver registry — the workspace's single backend-dispatch site.
///
/// [`BackendRegistry::builtin`] registers the five in-tree solvers; custom
/// registries can register additional (or replacement) [`CpuSolver`]s.
#[derive(Default)]
pub struct BackendRegistry {
    solvers: Vec<Box<dyn CpuSolver>>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("backends", &self.ids())
            .finish()
    }
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The five in-tree solvers, in canonical order. **This is the one
    /// backend-dispatch site in the workspace** — a new backend is wired in
    /// by registering it here (or into a custom registry).
    pub fn builtin() -> Self {
        let mut r = Self::new();
        r.register(Box::new(crate::models::markov_model::MarkovSolver));
        r.register(Box::new(crate::models::mg1_model::Mg1Solver));
        r.register(Box::new(crate::models::phase_model::ErlangPhaseSolver));
        r.register(Box::new(crate::models::petri_model::PetriSolver));
        r.register(Box::new(crate::models::des_model::DesSolver));
        r
    }

    /// Register a solver, replacing any previous solver with the same
    /// [`BackendId`].
    pub fn register(&mut self, solver: Box<dyn CpuSolver>) {
        let id = solver.id();
        match self.solvers.iter_mut().find(|s| s.id() == id) {
            Some(slot) => *slot = solver,
            None => self.solvers.push(solver),
        }
    }

    /// The solver for a backend, if registered.
    pub fn get(&self, id: BackendId) -> Option<&dyn CpuSolver> {
        self.solvers.iter().find(|s| s.id() == id).map(Box::as_ref)
    }

    /// The capability descriptor of a registered backend.
    pub fn capabilities_of(&self, id: BackendId) -> Option<Capabilities> {
        self.get(id).map(CpuSolver::capabilities)
    }

    /// Registered backend ids, in registration order.
    pub fn ids(&self) -> Vec<BackendId> {
        self.solvers.iter().map(|s| s.id()).collect()
    }

    /// Capability descriptors of every registered backend, in registration
    /// order.
    pub fn capabilities(&self) -> Vec<Capabilities> {
        self.solvers.iter().map(|s| s.capabilities()).collect()
    }

    /// Iterate the registered solvers in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn CpuSolver> {
        self.solvers.iter().map(Box::as_ref)
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }

    /// Evaluate `params` with the given backend.
    pub fn solve(
        &self,
        id: BackendId,
        params: &CpuModelParams,
        opts: &EvalOptions,
    ) -> Result<ModelEvaluation, CoreError> {
        let solver = self.get(id).ok_or_else(|| CoreError::UnknownBackend {
            name: id.name().to_owned(),
            did_you_mean: None,
            registered: self.ids().iter().map(|b| b.name().into()).collect(),
        })?;
        solver.solve(params, opts)
    }
}

/// The process-wide registry of built-in solvers — what [`BackendId`]
/// dispatch sites (node analysis, the scenario runner, the CLI) go through
/// by default. Code that registers custom solvers builds its own
/// [`BackendRegistry`] and passes it explicitly.
pub fn global() -> &'static BackendRegistry {
    static GLOBAL: OnceLock<BackendRegistry> = OnceLock::new();
    GLOBAL.get_or_init(BackendRegistry::builtin)
}

/// Shared capability guard: reject a non-exponential service distribution on
/// backends that would otherwise silently compute exponential numbers.
pub(crate) fn require_exponential_service(
    id: BackendId,
    opts: &EvalOptions,
) -> Result<(), CoreError> {
    if opts.service.is_exponential() {
        Ok(())
    } else {
        Err(CoreError::Unsupported {
            backend: id,
            what: format!(
                "non-exponential service distribution ({})",
                opts.service.label()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnem_stats::dist::Sample;

    #[test]
    fn canonical_names_round_trip() {
        for id in BackendId::ALL {
            assert_eq!(BackendId::parse(id.name()).unwrap(), id);
            assert_eq!(id.to_string(), id.name());
        }
        assert_eq!(BackendId::Des.paper_label(), "Simulation");
        assert_eq!(BackendId::PetriNet.paper_label(), "Petri Net");
    }

    #[test]
    fn lenient_parse_accepts_aliases() {
        for (alias, id) in [
            ("markov", BackendId::Markov),
            ("m/g/1", BackendId::Mg1),
            ("MG1", BackendId::Mg1),
            ("pk", BackendId::Mg1),
            ("erlang-phase", BackendId::ErlangPhase),
            ("phase", BackendId::ErlangPhase),
            ("petri", BackendId::PetriNet),
            ("petri_net", BackendId::PetriNet),
            ("pn", BackendId::PetriNet),
            ("simulation", BackendId::Des),
            ("DES", BackendId::Des),
        ] {
            assert_eq!(BackendId::parse(alias).unwrap(), id, "{alias}");
        }
    }

    #[test]
    fn unknown_backend_gets_did_you_mean() {
        let err = BackendId::parse("Markvo").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Markvo"), "{msg}");
        assert!(msg.contains("did you mean `Markov`"), "{msg}");
        // The registered list is registry-driven, so it can never go stale.
        for id in global().ids() {
            assert!(msg.contains(id.name()), "{msg} missing {id}");
        }
        // Nothing close: no suggestion, but still the full list.
        let msg = BackendId::parse("frobnicator").unwrap_err().to_string();
        assert!(!msg.contains("did you mean"), "{msg}");
        assert!(msg.contains("Markov"), "{msg}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("markov", "markov"), 0);
        assert_eq!(edit_distance("markvo", "markov"), 2); // transposition
        assert_eq!(edit_distance("", "des"), 3);
    }

    #[test]
    fn service_dist_means_are_preserved() {
        let mu = 8.0;
        for (sd, cv2) in [
            (ServiceDist::Exponential, 1.0),
            (ServiceDist::Deterministic, 0.0),
            (ServiceDist::Erlang { k: 4 }, 0.25),
        ] {
            let d = sd.to_dist(mu);
            d.validate().unwrap();
            assert!((d.mean() - 1.0 / mu).abs() < 1e-12, "{sd:?}");
            assert!((d.cv2() - cv2).abs() < 1e-12, "{sd:?}");
        }
        let g = ServiceDist::General {
            dist: Dist::Uniform {
                low: 0.05,
                high: 0.15,
            },
        };
        assert!((g.to_dist(mu).mean() - 0.1).abs() < 1e-12);
        assert!(!g.is_exponential());
        // A General exponential is NOT the built-in service: its rate may
        // differ from mu, so it must go through the capability gate.
        assert!(!ServiceDist::General {
            dist: Dist::Exponential { rate: 3.0 }
        }
        .is_exponential());
        assert!(ServiceDist::Exponential.is_exponential());
        assert!(!ServiceDist::Deterministic.is_exponential());
        assert_eq!(ServiceDist::Erlang { k: 3 }.label(), "erlang-3");
    }

    #[test]
    fn service_dist_validation() {
        assert!(ServiceDist::Erlang { k: 0 }.validate(10.0).is_err());
        assert!(ServiceDist::Exponential.validate(0.0).is_err());
        assert!(ServiceDist::Exponential.validate(10.0).is_ok());
        assert!(ServiceDist::General {
            dist: Dist::Uniform {
                low: 1.0,
                high: 0.5
            }
        }
        .validate(10.0)
        .is_err());
    }

    #[test]
    fn eval_options_apply_overrides() {
        let p = CpuModelParams::paper_defaults();
        let opts = EvalOptions::default()
            .with_seed(7)
            .with_replications(3)
            .with_horizon(500.0)
            .with_warmup(50.0)
            .with_threads(Some(1));
        let q = opts.apply(p);
        assert_eq!(q.master_seed, 7);
        assert_eq!(q.replications, 3);
        assert_eq!(q.horizon, 500.0);
        assert_eq!(q.warmup, 50.0);
        // Defaults change nothing.
        assert_eq!(EvalOptions::default().apply(p), p);
    }

    #[test]
    fn builtin_registry_covers_all_backends() {
        let r = BackendRegistry::builtin();
        assert_eq!(r.ids(), BackendId::ALL.to_vec());
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        for caps in r.capabilities() {
            assert_eq!(r.capabilities_of(caps.id).unwrap(), caps);
            // Analytic backends are deterministic; stochastic ones use seeds.
            assert_eq!(caps.analytic, !caps.uses_seed, "{:?}", caps.id);
        }
        // Cost ranks are distinct, so "cheapest requested backend" is
        // well-defined without an enum match.
        let mut ranks: Vec<u8> = r.capabilities().iter().map(|c| c.cost_rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), 5);
        assert_eq!(format!("{r:?}").matches("Markov").count(), 1);
    }

    #[test]
    fn registry_replaces_on_reregister() {
        struct FakeDes;
        impl CpuSolver for FakeDes {
            fn capabilities(&self) -> Capabilities {
                Capabilities {
                    id: BackendId::Des,
                    analytic: true,
                    ground_truth: false,
                    assumes_poisson: true,
                    supports_service_dist: false,
                    provides_mean_jobs: false,
                    provides_latency: false,
                    uses_seed: false,
                    requires_positive_delays: false,
                    cost_rank: 9,
                }
            }
            fn solve(
                &self,
                _params: &CpuModelParams,
                _opts: &EvalOptions,
            ) -> Result<ModelEvaluation, CoreError> {
                Err(CoreError::Unsupported {
                    backend: BackendId::Des,
                    what: "everything".into(),
                })
            }
        }
        let mut r = BackendRegistry::builtin();
        r.register(Box::new(FakeDes));
        assert_eq!(r.len(), 5, "replacement, not duplication");
        assert_eq!(r.capabilities_of(BackendId::Des).unwrap().cost_rank, 9);
        let err = r
            .solve(
                BackendId::Des,
                &CpuModelParams::paper_defaults(),
                &EvalOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }

    #[test]
    fn missing_backend_reported() {
        let r = BackendRegistry::new();
        let err = r
            .solve(
                BackendId::Markov,
                &CpuModelParams::paper_defaults(),
                &EvalOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownBackend { .. }), "{err}");
        assert!(r.get(BackendId::Markov).is_none());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip_and_did_you_mean() {
        for id in BackendId::ALL {
            let json = serde_json::to_string(&id).unwrap();
            assert_eq!(json, format!("\"{}\"", id.name()));
            let back: BackendId = serde_json::from_str(&json).unwrap();
            assert_eq!(back, id);
        }
        let err = serde_json::from_str::<BackendId>("\"PetriNte\"").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("did you mean `PetriNet`"), "{msg}");
        let err = serde_json::from_str::<BackendId>("42").unwrap_err();
        assert!(err.to_string().contains("backend name string"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn service_dist_serde_round_trip() {
        for sd in [
            ServiceDist::Exponential,
            ServiceDist::Deterministic,
            ServiceDist::Erlang { k: 4 },
            ServiceDist::General {
                dist: Dist::Gamma {
                    shape: 2.0,
                    rate: 20.0,
                },
            },
        ] {
            let json = serde_json::to_string(&sd).unwrap();
            let back: ServiceDist = serde_json::from_str(&json).unwrap();
            assert_eq!(back, sd, "{json}");
        }
    }
}
