//! Shared parameters of the CPU models.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Parameters shared by all three CPU models.
///
/// Defaults follow the paper's Table 2 with the service-rate ambiguity
/// resolved as documented in DESIGN.md §2: *"Service Rate .1 per sec"* is
/// read as a mean service **time** of 0.1 s (μ = 10/s), since λ = 1/s with
/// μ = 0.1/s would be an unstable queue incompatible with the paper's own
/// stability requirement (Eq. 17 needs ρ < 1) and with Fig. 4's ≈10% Active
/// line.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CpuModelParams {
    /// Poisson arrival rate λ (jobs/s). Paper: 1/s.
    pub lambda: f64,
    /// Exponential service rate μ (jobs/s). Paper: 10/s (see above).
    pub mu: f64,
    /// Power Down Threshold `T` (s): idle time before entering standby.
    pub power_down_threshold: f64,
    /// Power Up Delay `D` (s): constant wake-up time. Paper Fig. 4/5: 0.001.
    pub power_up_delay: f64,
    /// Simulated horizon per replication (s). Paper: 1000 s.
    pub horizon: f64,
    /// Warm-up truncation per replication (s).
    pub warmup: f64,
    /// Independent replications for the simulation-based models.
    pub replications: usize,
    /// Master seed for the replication RNG streams.
    pub master_seed: u64,
}

impl CpuModelParams {
    /// The paper's Table 2 settings (with T = 0.5 s as a mid-sweep default).
    pub fn paper_defaults() -> Self {
        Self {
            lambda: 1.0,
            mu: 10.0,
            power_down_threshold: 0.5,
            power_up_delay: 0.001,
            horizon: 1000.0,
            warmup: 0.0,
            replications: 16,
            master_seed: 0x5EED_2008,
        }
    }

    /// Replace the arrival rate λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Replace the service rate μ.
    pub fn with_mu(mut self, mu: f64) -> Self {
        self.mu = mu;
        self
    }

    /// Replace the Power Down Threshold `T`.
    pub fn with_power_down_threshold(mut self, t: f64) -> Self {
        self.power_down_threshold = t;
        self
    }

    /// Replace the Power Up Delay `D`.
    pub fn with_power_up_delay(mut self, d: f64) -> Self {
        self.power_up_delay = d;
        self
    }

    /// Replace the per-replication horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Replace the warm-up truncation.
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Replace the replication count.
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications;
        self
    }

    /// Replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Effective parameters for a relay node: its own sensing rate plus the
    /// traffic it forwards for its subtree, wired into λ. With
    /// `forwarded = 0` this is exactly `with_lambda(own_rate)` — the
    /// single-hop case.
    pub fn with_forwarding(self, own_rate: f64, forwarded: f64) -> Self {
        self.with_lambda(own_rate + forwarded)
    }

    /// The largest arrival rate these parameters can absorb while the queue
    /// stays stable (ρ < 1) — the headroom check multi-hop relays need,
    /// since forwarding load raises a relay's effective λ above its own
    /// sensing rate. Rates strictly below this validate; `max_stable_lambda`
    /// itself does not.
    pub fn max_stable_lambda(&self) -> f64 {
        self.mu
    }

    /// Offered load ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Validate the full parameter set.
    pub fn validate(&self) -> Result<(), CoreError> {
        fn check(
            what: &'static str,
            ok: bool,
            constraint: &'static str,
            value: f64,
        ) -> Result<(), CoreError> {
            if ok {
                Ok(())
            } else {
                Err(CoreError::InvalidParameter {
                    what,
                    constraint,
                    value,
                })
            }
        }
        check(
            "lambda",
            self.lambda > 0.0 && self.lambda.is_finite(),
            "> 0 and finite",
            self.lambda,
        )?;
        check(
            "mu",
            self.mu > 0.0 && self.mu.is_finite(),
            "> 0 and finite",
            self.mu,
        )?;
        check("rho", self.rho() < 1.0, "< 1 (stable queue)", self.rho())?;
        check(
            "power_down_threshold",
            self.power_down_threshold >= 0.0 && self.power_down_threshold.is_finite(),
            ">= 0 and finite",
            self.power_down_threshold,
        )?;
        check(
            "power_up_delay",
            self.power_up_delay >= 0.0 && self.power_up_delay.is_finite(),
            ">= 0 and finite",
            self.power_up_delay,
        )?;
        check(
            "horizon",
            self.horizon > 0.0 && self.horizon.is_finite(),
            "> 0 and finite",
            self.horizon,
        )?;
        check(
            "warmup",
            (0.0..self.horizon).contains(&self.warmup),
            "0 <= warmup < horizon",
            self.warmup,
        )?;
        check(
            "replications",
            self.replications >= 1,
            ">= 1",
            self.replications as f64,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_valid_and_stable() {
        let p = CpuModelParams::paper_defaults();
        p.validate().unwrap();
        assert_eq!(p.lambda, 1.0);
        assert_eq!(p.mu, 10.0);
        assert!((p.rho() - 0.1).abs() < 1e-12);
        assert_eq!(p.horizon, 1000.0);
    }

    #[test]
    fn builder_chain() {
        let p = CpuModelParams::paper_defaults()
            .with_lambda(2.0)
            .with_mu(8.0)
            .with_power_down_threshold(0.25)
            .with_power_up_delay(0.3)
            .with_horizon(500.0)
            .with_warmup(50.0)
            .with_replications(4)
            .with_seed(7);
        p.validate().unwrap();
        assert_eq!(p.lambda, 2.0);
        assert_eq!(p.mu, 8.0);
        assert_eq!(p.power_down_threshold, 0.25);
        assert_eq!(p.power_up_delay, 0.3);
        assert_eq!(p.horizon, 500.0);
        assert_eq!(p.warmup, 50.0);
        assert_eq!(p.replications, 4);
        assert_eq!(p.master_seed, 7);
    }

    #[test]
    fn forwarding_plumbs_into_lambda() {
        let p = CpuModelParams::paper_defaults();
        assert_eq!(p.with_forwarding(0.4, 0.0), p.with_lambda(0.4));
        let relay = p.with_forwarding(0.4, 2.1);
        assert!((relay.lambda - 2.5).abs() < 1e-12);
        relay.validate().unwrap();
        assert_eq!(p.max_stable_lambda(), 10.0);
        assert!(p.with_lambda(p.max_stable_lambda()).validate().is_err());
        assert!(p
            .with_lambda(0.99 * p.max_stable_lambda())
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let base = CpuModelParams::paper_defaults();
        assert!(base.with_lambda(0.0).validate().is_err());
        assert!(base.with_mu(-1.0).validate().is_err());
        assert!(base.with_lambda(10.0).validate().is_err(), "rho >= 1");
        assert!(base.with_power_down_threshold(-0.1).validate().is_err());
        assert!(base.with_power_up_delay(f64::NAN).validate().is_err());
        assert!(base.with_horizon(0.0).validate().is_err());
        assert!(base.with_warmup(1000.0).validate().is_err());
        assert!(base.with_replications(0).validate().is_err());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip() {
        let p = CpuModelParams::paper_defaults();
        let s = serde_json::to_string(&p).unwrap();
        let back: CpuModelParams = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
