//! The experiment harness: every table and figure of the paper's evaluation
//! section, plus the DESIGN.md ablations.
//!
//! | Artifact | Function | Bench binary |
//! |---|---|---|
//! | Fig. 4 (state percentages vs `T`) | [`sweep::ThresholdSweep`] | `fig4` |
//! | Fig. 5 (energy vs `T`) | [`sweep::SweepResult::energy_series`] | `fig5` |
//! | Table 4 (Δ percentages vs `D`) | [`tables::table4`] | `table4` |
//! | Table 5 (Δ energy vs `D`) | [`tables::table5`] | `table5` |
//! | E7 Erlang-phase ablation | [`ablation::erlang_ablation`] | `ablation_erlang` |
//! | E8 convergence ablation | [`ablation::convergence_ablation`] | `ablation_convergence` |

pub mod ablation;
pub mod delay_sweep;
pub mod sweep;
pub mod tables;

pub use ablation::{convergence_ablation, erlang_ablation, ConvergenceRow, ErlangRow};
pub use delay_sweep::{delay_sweep, markov_validity_boundary, DelaySweepRow};
pub use sweep::{SweepPoint, SweepResult, ThresholdSweep};
pub use tables::{table4, table5, DeltaRow};

use crate::error::CoreError;
use crate::evaluation::{CpuModel, ModelEvaluation};
use crate::models::des_model::DesCpuModel;
use crate::models::markov_model::MarkovCpuModel;
use crate::models::petri_model::PetriCpuModel;
use crate::params::CpuModelParams;

/// Evaluate all three models on the same parameters
/// (order: Markov, Petri net, DES).
pub fn compare_all(
    params: CpuModelParams,
) -> Result<(ModelEvaluation, ModelEvaluation, ModelEvaluation), CoreError> {
    let markov = MarkovCpuModel::new(params).evaluate()?;
    let petri = PetriCpuModel::new(params).evaluate()?;
    let des = DesCpuModel::new(params).evaluate()?;
    Ok((markov, petri, des))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_all_returns_three_normalized_evaluations() {
        let params = CpuModelParams::paper_defaults()
            .with_replications(4)
            .with_horizon(400.0);
        let (m, p, d) = compare_all(params).unwrap();
        for e in [&m, &p, &d] {
            assert!(e.fractions.is_normalized(1e-6));
        }
        assert_eq!(m.kind, crate::BackendId::Markov);
        assert_eq!(p.kind, crate::BackendId::PetriNet);
        assert_eq!(d.kind, crate::BackendId::Des);
    }
}
