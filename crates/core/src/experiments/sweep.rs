//! Power-Down-Threshold sweeps — the x-axis of Figs. 4 and 5.

use wsnem_energy::PowerProfile;

use crate::backend::BackendId;
use crate::error::CoreError;
use crate::evaluation::{CpuModel, ModelEvaluation};
use crate::models::des_model::DesCpuModel;
use crate::models::markov_model::MarkovCpuModel;
use crate::models::petri_model::PetriCpuModel;
use crate::params::CpuModelParams;

/// One sweep point: the three models evaluated at the same `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The Power Down Threshold of this point (s).
    pub t: f64,
    /// Supplementary-variable Markov evaluation.
    pub markov: ModelEvaluation,
    /// EDSPN evaluation.
    pub petri: ModelEvaluation,
    /// DES ground truth.
    pub des: ModelEvaluation,
}

impl SweepPoint {
    /// Evaluation of the given backend. Panics for a backend this sweep did
    /// not run (the paper's sweeps cover Markov, PetriNet and Des).
    pub fn of(&self, kind: BackendId) -> &ModelEvaluation {
        [&self.markov, &self.petri, &self.des]
            .into_iter()
            .find(|e| e.kind == kind)
            .unwrap_or_else(|| panic!("backend `{kind}` is not part of a threshold sweep"))
    }
}

/// A completed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Shared parameters (T is overridden per point).
    pub params: CpuModelParams,
    /// Points in ascending `T`.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The per-point percentages of one state (canonical index 0..4) for one
    /// model — a single curve of Fig. 4.
    pub fn percent_series(&self, kind: BackendId, state_index: usize) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.of(kind).fractions.as_percentages()[state_index])
            .collect()
    }

    /// Energy (J) over the sweep for one model — a curve of Fig. 5
    /// (Eq. 25 with the configured horizon).
    pub fn energy_series(&self, kind: BackendId, profile: &PowerProfile) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.of(kind).energy_joules(profile, self.params.horizon))
            .collect()
    }

    /// The threshold values (x-axis).
    pub fn t_values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.t).collect()
    }
}

/// Sweep descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSweep {
    /// Base parameters (T overridden per point).
    pub params: CpuModelParams,
    /// Threshold values to evaluate.
    pub t_values: Vec<f64>,
}

impl ThresholdSweep {
    /// The paper's Fig. 4/5 sweep: `T ∈ {0.0, 0.1, …, 1.0}` at the given
    /// Power Up Delay `D`.
    pub fn paper(params: CpuModelParams, d: f64) -> Self {
        Self {
            params: params.with_power_up_delay(d),
            t_values: (0..=10).map(|i| i as f64 * 0.1).collect(),
        }
    }

    /// Run the sweep, parallelizing across points (each point's models run
    /// single-threaded so the parallelism is not nested).
    pub fn run(&self) -> Result<SweepResult, CoreError> {
        self.params.validate()?;
        let n = self.t_values.len();
        if n == 0 {
            return Ok(SweepResult {
                params: self.params,
                points: Vec::new(),
            });
        }
        let mut slots: Vec<Option<Result<SweepPoint, CoreError>>> = vec![None; n];
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(1, n.max(1));
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (k, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                let t_values = &self.t_values;
                let params = self.params;
                scope.spawn(move || {
                    for (j, slot) in chunk_slots.iter_mut().enumerate() {
                        let t = t_values[k * chunk + j];
                        *slot = Some(evaluate_point(params, t));
                    }
                });
            }
        });

        let mut points = Vec::with_capacity(n);
        for slot in slots {
            // `chunks_mut` partitions the whole slice, so every slot was
            // written.
            let Some(point) = slot else {
                unreachable!("sweep point left unevaluated")
            };
            points.push(point?);
        }
        Ok(SweepResult {
            params: self.params,
            points,
        })
    }
}

fn evaluate_point(base: CpuModelParams, t: f64) -> Result<SweepPoint, CoreError> {
    let params = base.with_power_down_threshold(t);
    let markov = MarkovCpuModel::new(params).evaluate()?;
    let petri = PetriCpuModel::new(params)
        .with_threads(Some(1))
        .evaluate()?;
    let des = DesCpuModel::new(params).with_threads(Some(1)).evaluate()?;
    Ok(SweepPoint {
        t,
        markov,
        petri,
        des,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep() -> SweepResult {
        let params = CpuModelParams::paper_defaults()
            .with_replications(4)
            .with_horizon(800.0)
            .with_warmup(50.0);
        ThresholdSweep {
            params,
            t_values: vec![0.0, 0.25, 0.5, 1.0],
        }
        .run()
        .unwrap()
    }

    #[test]
    fn sweep_produces_fig4_shape() {
        let res = quick_sweep();
        assert_eq!(res.t_values(), vec![0.0, 0.25, 0.5, 1.0]);
        // Idle rises with T, standby falls — for every model.
        for kind in [BackendId::Markov, BackendId::PetriNet, BackendId::Des] {
            let idle = res.percent_series(kind, 2);
            let standby = res.percent_series(kind, 0);
            assert!(
                idle.last().unwrap() > idle.first().unwrap(),
                "{kind}: idle not rising: {idle:?}"
            );
            assert!(
                standby.last().unwrap() < standby.first().unwrap(),
                "{kind}: standby not falling: {standby:?}"
            );
            // Active ≈ ρ = 10% everywhere (D tiny).
            for a in res.percent_series(kind, 3) {
                assert!((a - 10.0).abs() < 2.5, "{kind}: active {a}%");
            }
        }
    }

    #[test]
    fn energy_rises_with_threshold_fig5_shape() {
        let res = quick_sweep();
        let p = PowerProfile::pxa271();
        for kind in [BackendId::Markov, BackendId::PetriNet, BackendId::Des] {
            let e = res.energy_series(kind, &p);
            assert!(
                e.last().unwrap() > e.first().unwrap(),
                "{kind}: energy not rising: {e:?}"
            );
            // All values in the physically-possible band.
            for v in &e {
                assert!(*v >= 17.0 * 0.8 && *v <= 193.0 * 800.0 / 1000.0);
            }
        }
    }

    #[test]
    fn models_agree_at_small_d() {
        let res = quick_sweep();
        for pt in &res.points {
            let d1 = pt.des.fractions.mean_abs_delta_pct(&pt.markov.fractions);
            let d2 = pt.des.fractions.mean_abs_delta_pct(&pt.petri.fractions);
            assert!(d1 < 3.0, "T={}: sim-markov Δ={d1}", pt.t);
            assert!(d2 < 3.0, "T={}: sim-pn Δ={d2}", pt.t);
        }
    }

    #[test]
    fn empty_sweep_returns_empty_result() {
        let sweep = ThresholdSweep {
            params: CpuModelParams::paper_defaults()
                .with_replications(1)
                .with_horizon(50.0),
            t_values: vec![],
        };
        let r = sweep.run().unwrap();
        assert!(r.points.is_empty());
    }
}
