//! Extension experiment E9: where exactly does the supplementary-variable
//! approximation break?
//!
//! Tables 4/5 sample three Power-Up Delays; this sweep walks `D` finely and
//! reports each model's error against the DES ground truth, locating the
//! `λD` boundary beyond which the paper's Markov model should not be
//! trusted — the constant behind `wsn::tuning`'s backend choice.

use wsnem_energy::StateFractions;

use crate::error::CoreError;
use crate::evaluation::CpuModel;
use crate::models::des_model::DesCpuModel;
use crate::models::markov_model::MarkovCpuModel;
use crate::models::petri_model::PetriCpuModel;
use crate::models::phase_model::PhaseCpuModel;
use crate::params::CpuModelParams;

/// One row of the delay sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySweepRow {
    /// Power Up Delay (s).
    pub d: f64,
    /// λD — the dimensionless backlog measure that governs validity.
    pub lambda_d: f64,
    /// DES reference fractions.
    pub des: StateFractions,
    /// Supplementary-variable error vs DES (pp).
    pub markov_err: f64,
    /// Erlang-phase (16 phases) error vs DES (pp).
    pub phase_err: f64,
    /// Petri-net error vs DES (pp).
    pub petri_err: f64,
}

/// Sweep the Power Up Delay and measure each model's deviation from DES.
///
/// Points run in parallel; inner models run single-threaded.
pub fn delay_sweep(
    params: CpuModelParams,
    d_values: &[f64],
) -> Result<Vec<DelaySweepRow>, CoreError> {
    params.validate()?;
    let n = d_values.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut slots: Vec<Option<Result<DelaySweepRow, CoreError>>> = vec![None; n];
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, n.max(1));
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (k, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (j, slot) in chunk_slots.iter_mut().enumerate() {
                    let d = d_values[k * chunk + j];
                    *slot = Some(sweep_point(params, d));
                }
            });
        }
    });
    let mut rows = Vec::with_capacity(n);
    for slot in slots {
        // `chunks_mut` partitions the whole slice, so every slot was written.
        let Some(row) = slot else {
            unreachable!("sweep point left unevaluated")
        };
        rows.push(row?);
    }
    Ok(rows)
}

fn sweep_point(base: CpuModelParams, d: f64) -> Result<DelaySweepRow, CoreError> {
    let params = base.with_power_up_delay(d);
    let des = DesCpuModel::new(params).with_threads(Some(1)).evaluate()?;
    let markov = MarkovCpuModel::new(params).evaluate()?;
    let petri = PetriCpuModel::new(params)
        .with_threads(Some(1))
        .evaluate()?;
    // Phase expansion needs strictly positive delays.
    let phase_err = if d > 0.0 && params.power_down_threshold > 0.0 {
        let phase = PhaseCpuModel::new(params).evaluate()?;
        des.fractions.mean_abs_delta_pct(&phase.fractions)
    } else {
        f64::NAN
    };
    Ok(DelaySweepRow {
        d,
        lambda_d: params.lambda * d,
        des: des.fractions,
        markov_err: des.fractions.mean_abs_delta_pct(&markov.fractions),
        phase_err,
        petri_err: des.fractions.mean_abs_delta_pct(&petri.fractions),
    })
}

/// The smallest swept `λD` at which the supplementary-variable error exceeds
/// `threshold_pp` percentage points (`None` if it never does).
pub fn markov_validity_boundary(rows: &[DelaySweepRow], threshold_pp: f64) -> Option<f64> {
    rows.iter()
        .filter(|r| r.markov_err > threshold_pp)
        .map(|r| r.lambda_d)
        .fold(None, |acc, x| match acc {
            None => Some(x),
            Some(a) => Some(a.min(x)),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CpuModelParams {
        CpuModelParams::paper_defaults()
            .with_replications(6)
            .with_horizon(2500.0)
            .with_warmup(150.0)
    }

    #[test]
    fn errors_grow_with_delay_for_markov_only() {
        let rows = delay_sweep(quick(), &[0.01, 1.0, 5.0]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].markov_err < 1.0, "{}", rows[0].markov_err);
        assert!(
            rows[2].markov_err > rows[0].markov_err + 3.0,
            "{} vs {}",
            rows[2].markov_err,
            rows[0].markov_err
        );
        // PN and phase chain stay accurate throughout.
        for r in &rows {
            assert!(r.petri_err < 1.5, "D={}: pn {}", r.d, r.petri_err);
            assert!(r.phase_err < 1.5, "D={}: phase {}", r.d, r.phase_err);
            assert!((r.lambda_d - r.d).abs() < 1e-12, "λ = 1 here");
        }
    }

    #[test]
    fn boundary_detection() {
        let rows = delay_sweep(quick(), &[0.01, 2.0]).unwrap();
        let boundary = markov_validity_boundary(&rows, 1.0);
        assert_eq!(boundary, Some(2.0), "rows: {rows:?}");
        assert_eq!(markov_validity_boundary(&rows, 1e9), None);
    }

    #[test]
    fn empty_delay_sweep_returns_empty_vec() {
        let params = CpuModelParams::paper_defaults()
            .with_replications(1)
            .with_horizon(50.0);
        assert!(delay_sweep(params, &[]).unwrap().is_empty());
    }
}
