//! Paper Tables 4 and 5: model disagreement as the Power Up Delay grows.

use wsnem_energy::PowerProfile;

use crate::backend::BackendId;
use crate::error::CoreError;
use crate::experiments::sweep::{SweepResult, ThresholdSweep};
use crate::params::CpuModelParams;

/// One row of Table 4/5: pairwise model deltas at a given `D`, averaged over
/// the threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Power Up Delay of this row (s).
    pub d: f64,
    /// Mean |Simulation − Markov| over the sweep.
    pub sim_markov: f64,
    /// Mean |Simulation − Petri net| over the sweep.
    pub sim_pn: f64,
    /// Mean |Markov − Petri net| over the sweep.
    pub markov_pn: f64,
    /// The underlying sweep (kept for drill-down printing).
    pub sweep: SweepResult,
}

fn pairwise_pct_delta(sweep: &SweepResult, a: BackendId, b: BackendId) -> f64 {
    let n = sweep.points.len() as f64;
    sweep
        .points
        .iter()
        .map(|p| p.of(a).fractions.mean_abs_delta_pct(&p.of(b).fractions))
        .sum::<f64>()
        / n
}

fn pairwise_energy_delta(
    sweep: &SweepResult,
    a: BackendId,
    b: BackendId,
    profile: &PowerProfile,
) -> f64 {
    let ea = sweep.energy_series(a, profile);
    let eb = sweep.energy_series(b, profile);
    // Both series come from the same sweep, so the lengths always match.
    match wsnem_stats::mean_abs_error(&ea, &eb) {
        Ok(delta) => delta,
        Err(_) => unreachable!("energy series from one sweep differ in length"),
    }
}

/// Table 4: Δ steady-state percentages for each Power Up Delay.
///
/// Reported as the mean (over the threshold sweep) of the mean absolute
/// per-state difference in percentage points. The paper's table appears to
/// aggregate differently (its values scale with the sweep size) but the
/// *ordering* — Sim–PN ≪ Sim–Markov for large `D`, comparable at
/// `D = 0.001` — is the claim under reproduction (see EXPERIMENTS.md).
pub fn table4(params: CpuModelParams, d_values: &[f64]) -> Result<Vec<DeltaRow>, CoreError> {
    let mut rows = Vec::with_capacity(d_values.len());
    for &d in d_values {
        let sweep = ThresholdSweep::paper(params, d).run()?;
        rows.push(DeltaRow {
            d,
            sim_markov: pairwise_pct_delta(&sweep, BackendId::Des, BackendId::Markov),
            sim_pn: pairwise_pct_delta(&sweep, BackendId::Des, BackendId::PetriNet),
            markov_pn: pairwise_pct_delta(&sweep, BackendId::Markov, BackendId::PetriNet),
            sweep,
        });
    }
    Ok(rows)
}

/// Table 5: Δ energy (J) for each Power Up Delay, over the same sweeps.
pub fn table5(
    params: CpuModelParams,
    d_values: &[f64],
    profile: &PowerProfile,
) -> Result<Vec<DeltaRow>, CoreError> {
    let mut rows = Vec::with_capacity(d_values.len());
    for &d in d_values {
        let sweep = ThresholdSweep::paper(params, d).run()?;
        rows.push(DeltaRow {
            d,
            sim_markov: pairwise_energy_delta(&sweep, BackendId::Des, BackendId::Markov, profile),
            sim_pn: pairwise_energy_delta(&sweep, BackendId::Des, BackendId::PetriNet, profile),
            markov_pn: pairwise_energy_delta(
                &sweep,
                BackendId::Markov,
                BackendId::PetriNet,
                profile,
            ),
            sweep,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> CpuModelParams {
        CpuModelParams::paper_defaults()
            .with_replications(6)
            .with_horizon(1500.0)
            .with_warmup(100.0)
    }

    #[test]
    fn table4_headline_claim() {
        // At D = 10 s the Markov approximation must be far worse than the
        // Petri net; at D = 0.001 they are comparable. (Paper Table 4.)
        let rows = table4(quick_params(), &[0.001, 10.0]).unwrap();
        assert_eq!(rows.len(), 2);
        let small_d = &rows[0];
        let large_d = &rows[1];
        assert!(
            small_d.sim_markov < 3.0,
            "D=0.001 Sim-Markov Δ = {}",
            small_d.sim_markov
        );
        assert!(
            small_d.sim_pn < 3.0,
            "D=0.001 Sim-PN Δ = {}",
            small_d.sim_pn
        );
        assert!(
            large_d.sim_markov > 3.0 * large_d.sim_pn,
            "D=10: Markov Δ {} must dwarf PN Δ {}",
            large_d.sim_markov,
            large_d.sim_pn
        );
    }

    #[test]
    fn table5_headline_claim() {
        let rows = table5(quick_params(), &[0.001, 10.0], &PowerProfile::pxa271()).unwrap();
        let small_d = &rows[0];
        let large_d = &rows[1];
        assert!(small_d.sim_markov < 2.0, "{}", small_d.sim_markov);
        assert!(small_d.sim_pn < 2.0, "{}", small_d.sim_pn);
        assert!(
            large_d.sim_markov > 3.0 * large_d.sim_pn,
            "D=10: Markov energy Δ {} must dwarf PN Δ {}",
            large_d.sim_markov,
            large_d.sim_pn
        );
        // Markov-PN disagreement mirrors Sim-Markov at large D (the paper's
        // Table 5 third column).
        assert!(large_d.markov_pn > large_d.sim_pn);
    }
}
