//! DESIGN.md ablations E7 (Erlang phases) and E8 (simulation convergence).

use wsnem_energy::StateFractions;
use wsnem_markov::PhaseCpuChain;

use crate::error::CoreError;
use crate::evaluation::CpuModel;
use crate::models::des_model::DesCpuModel;
use crate::models::petri_model::PetriCpuModel;
use crate::params::CpuModelParams;

/// One row of the Erlang-phase ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ErlangRow {
    /// Number of Erlang phases used for both delays.
    pub phases: u32,
    /// CTMC size.
    pub n_states: usize,
    /// The phase-chain prediction.
    pub fractions: StateFractions,
    /// Mean absolute delta vs the DES reference (percentage points).
    pub delta_vs_des: f64,
    /// Wall-clock seconds to build + solve the chain.
    pub eval_seconds: f64,
}

/// E7: replace the deterministic `T` and `D` by Erlang-k phases and measure
/// convergence toward the DES ground truth as `k` grows.
///
/// This quantifies the paper's closing remark — "if an effective method of
/// modeling constant delays in Markov chains can be derived, the Markov
/// model may well become the modeling method of choice".
pub fn erlang_ablation(
    params: CpuModelParams,
    phase_counts: &[u32],
) -> Result<(StateFractions, Vec<ErlangRow>), CoreError> {
    params.validate()?;
    if params.power_down_threshold <= 0.0 || params.power_up_delay <= 0.0 {
        return Err(CoreError::InvalidParameter {
            what: "erlang_ablation",
            constraint: "T > 0 and D > 0 (phase expansion needs positive delays)",
            value: params.power_down_threshold.min(params.power_up_delay),
        });
    }
    let des = DesCpuModel::new(params).evaluate()?;
    let mut rows = Vec::with_capacity(phase_counts.len());
    for &k in phase_counts {
        let start = std::time::Instant::now();
        let chain = PhaseCpuChain::new(
            params.lambda,
            params.mu,
            params.power_down_threshold,
            params.power_up_delay,
            k,
            k,
            0,
        )?;
        let fractions = chain.fractions()?;
        rows.push(ErlangRow {
            phases: k,
            n_states: chain.n_states(),
            fractions,
            delta_vs_des: fractions.mean_abs_delta_pct(&des.fractions),
            eval_seconds: start.elapsed().as_secs_f64(),
        });
    }
    Ok((des.fractions, rows))
}

/// One row of the convergence ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceRow {
    /// Per-replication horizon used (s).
    pub horizon: f64,
    /// Replication count used.
    pub replications: usize,
    /// Petri-net estimate at this budget.
    pub fractions: StateFractions,
    /// Mean absolute delta vs the high-budget DES reference (pp).
    pub delta_vs_reference: f64,
    /// Wall-clock seconds for the PN evaluation.
    pub eval_seconds: f64,
}

/// E8: how the Petri net estimate converges with simulation budget — the §6
/// drawback ("long simulation time … before the percentages stabilize").
pub fn convergence_ablation(
    params: CpuModelParams,
    budgets: &[(f64, usize)],
) -> Result<(StateFractions, Vec<ConvergenceRow>), CoreError> {
    // High-budget DES reference.
    let reference = DesCpuModel::new(
        params
            .with_horizon(20_000.0)
            .with_warmup(1000.0)
            .with_replications(16),
    )
    .evaluate()?;
    let mut rows = Vec::with_capacity(budgets.len());
    for &(horizon, replications) in budgets {
        let p = params
            .with_horizon(horizon)
            .with_replications(replications)
            .with_warmup((horizon * 0.05).min(100.0));
        let eval = PetriCpuModel::new(p).evaluate()?;
        rows.push(ConvergenceRow {
            horizon,
            replications,
            fractions: eval.fractions,
            delta_vs_reference: eval.fractions.mean_abs_delta_pct(&reference.fractions),
            eval_seconds: eval.eval_seconds,
        });
    }
    Ok((reference.fractions, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_error_shrinks_with_phases() {
        let params = CpuModelParams::paper_defaults()
            .with_power_up_delay(0.3)
            .with_replications(8)
            .with_horizon(4000.0)
            .with_warmup(200.0);
        let (_des, rows) = erlang_ablation(params, &[1, 8]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].delta_vs_des < rows[0].delta_vs_des,
            "k=8 ({}) should beat k=1 ({})",
            rows[1].delta_vs_des,
            rows[0].delta_vs_des
        );
        assert!(rows[1].n_states > rows[0].n_states, "phase cost grows");
        for r in &rows {
            assert!(r.fractions.is_normalized(1e-6));
        }
    }

    #[test]
    fn erlang_rejects_zero_delays() {
        let params = CpuModelParams::paper_defaults().with_power_up_delay(0.0);
        assert!(erlang_ablation(params, &[1]).is_err());
    }

    #[test]
    fn convergence_improves_with_budget() {
        let params = CpuModelParams::paper_defaults();
        let (reference, rows) = convergence_ablation(params, &[(200.0, 2), (5000.0, 8)]).unwrap();
        assert!(reference.is_normalized(1e-6));
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].delta_vs_reference < rows[0].delta_vs_reference + 0.5,
            "bigger budget should not be much worse: {} vs {}",
            rows[1].delta_vs_reference,
            rows[0].delta_vs_reference
        );
    }
}
