//! # wsnem-core
//!
//! The paper's contribution, as a library: three interchangeable models of a
//! wireless-sensor-node processor with power management —
//!
//! * [`MarkovCpuModel`] — the supplementary-variable closed forms
//!   (paper §4.1, Eqs. 1–24),
//! * [`PetriCpuModel`] — the EDSPN of paper Fig. 3 / Table 1 executed on the
//!   `wsnem-petri` token game,
//! * [`DesCpuModel`] — the discrete-event ground-truth simulator
//!   (the paper's Matlab benchmark),
//!
//! all behind the [`CpuModel`] trait, plus the [`experiments`] harness that
//! regenerates every table and figure of the evaluation section (Fig. 4,
//! Fig. 5, Table 4, Table 5) and the ablations DESIGN.md adds (Erlang-phase
//! Markov chains, convergence studies).

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod error;
pub mod evaluation;
pub mod experiments;
pub mod models;
pub mod params;

pub use error::CoreError;
pub use evaluation::{CpuModel, ModelEvaluation, ModelKind};
pub use models::des_model::DesCpuModel;
pub use models::markov_model::MarkovCpuModel;
pub use models::petri_model::{build_cpu_edspn, CpuNetHandles, PetriCpuModel};
pub use models::phase_model::PhaseCpuModel;
pub use params::CpuModelParams;
