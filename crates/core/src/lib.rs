//! # wsnem-core
//!
//! The paper's contribution, as a library: three interchangeable models of a
//! wireless-sensor-node processor with power management —
//!
//! * [`MarkovCpuModel`] — the supplementary-variable closed forms
//!   (paper §4.1, Eqs. 1–24),
//! * [`PetriCpuModel`] — the EDSPN of paper Fig. 3 / Table 1 executed on the
//!   `wsnem-petri` token game,
//! * [`DesCpuModel`] — the discrete-event ground-truth simulator
//!   (the paper's Matlab benchmark),
//! * [`Mg1CpuModel`] — the exact M/G/1 Pollaczek–Khinchine closed form for
//!   any service-time law (the million-node analytic fast path),
//!
//! all behind the [`CpuModel`] trait, plus the [`experiments`] harness that
//! regenerates every table and figure of the evaluation section (Fig. 4,
//! Fig. 5, Table 4, Table 5) and the ablations DESIGN.md adds (Erlang-phase
//! Markov chains, convergence studies).
//!
//! The [`backend`] module is the unified solver API: one [`BackendId`]
//! shared by every layer, an object-safe [`CpuSolver`] trait with a
//! per-backend [`Capabilities`] descriptor, and the [`BackendRegistry`]
//! through which the node/network layer, the scenario runner and the CLI
//! dispatch — the workspace's single backend-dispatch site.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod backend;
pub mod error;
pub mod evaluation;
pub mod experiments;
pub mod models;
pub mod params;

pub use backend::{BackendId, BackendRegistry, Capabilities, CpuSolver, EvalOptions, ServiceDist};
pub use error::CoreError;
pub use evaluation::{CpuModel, ModelEvaluation, ModelKind};
pub use models::des_model::{DesCpuModel, DesSolver};
pub use models::markov_model::{MarkovCpuModel, MarkovSolver};
pub use models::mg1_model::{Mg1CpuModel, Mg1Solver};
pub use models::petri_model::{
    build_cpu_edspn, build_cpu_edspn_with_service, state_rewards, CpuNetHandles, PetriCpuModel,
    PetriSolver,
};
pub use models::phase_model::{ErlangPhaseSolver, PhaseCpuModel};
pub use params::CpuModelParams;
