//! Unified error type for the model layer.

use std::fmt;

use wsnem_des::DesError;
use wsnem_markov::MarkovError;
use wsnem_petri::PetriError;

/// Errors raised while building or evaluating CPU models.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The Markov layer rejected the parameters or failed to solve.
    Markov(MarkovError),
    /// The Petri layer rejected the net or simulation.
    Petri(PetriError),
    /// The DES layer rejected the parameters.
    Des(DesError),
    /// A model parameter was out of domain.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// Constraint description.
        constraint: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A capability the backend does not provide was requested (e.g. a
    /// non-exponential service distribution from an analytic backend).
    /// Raised instead of silently falling back to wrong numbers.
    Unsupported {
        /// The backend that rejected the request.
        backend: crate::backend::BackendId,
        /// What was requested.
        what: String,
    },
    /// The requested service-time distribution is itself out of domain.
    InvalidService {
        /// The stats layer's description of what is wrong.
        detail: String,
    },
    /// A backend name did not resolve against the registry.
    UnknownBackend {
        /// The name as given.
        name: String,
        /// Closest registered name, when one is plausibly close.
        did_you_mean: Option<String>,
        /// Every registered backend name (registry-driven, never stale).
        registered: Vec<String>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Markov(e) => write!(f, "markov model: {e}"),
            CoreError::Petri(e) => write!(f, "petri model: {e}"),
            CoreError::Des(e) => write!(f, "des model: {e}"),
            CoreError::InvalidParameter {
                what,
                constraint,
                value,
            } => write!(f, "{what}: value {value} violates {constraint}"),
            CoreError::InvalidService { detail } => {
                write!(f, "service distribution: {detail}")
            }
            CoreError::Unsupported { backend, what } => write!(
                f,
                "backend `{backend}` does not support {what} \
                 (see its Capabilities descriptor)"
            ),
            CoreError::UnknownBackend {
                name,
                did_you_mean,
                registered,
            } => {
                write!(f, "unknown backend `{name}`")?;
                if let Some(s) = did_you_mean {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                write!(f, "; registered backends: {}", registered.join(", "))
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Markov(e) => Some(e),
            CoreError::Petri(e) => Some(e),
            CoreError::Des(e) => Some(e),
            CoreError::InvalidParameter { .. }
            | CoreError::InvalidService { .. }
            | CoreError::Unsupported { .. }
            | CoreError::UnknownBackend { .. } => None,
        }
    }
}

impl From<MarkovError> for CoreError {
    fn from(e: MarkovError) -> Self {
        CoreError::Markov(e)
    }
}

impl From<PetriError> for CoreError {
    fn from(e: PetriError) -> Self {
        CoreError::Petri(e)
    }
}

impl From<DesError> for CoreError {
    fn from(e: DesError) -> Self {
        CoreError::Des(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = MarkovError::Empty.into();
        assert!(e.to_string().contains("markov"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = PetriError::VanishingLoop { time: 0.0 }.into();
        assert!(e.to_string().contains("petri"));
        let e: CoreError = DesError::TimeTravel {
            now: 1.0,
            requested: 0.0,
        }
        .into();
        assert!(e.to_string().contains("des"));
        let e = CoreError::InvalidParameter {
            what: "x",
            constraint: "> 0",
            value: -1.0,
        };
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("x"));
    }
}
