//! JSON rendering and parsing over the in-workspace serde subset.
//!
//! Source-compatible with the `serde_json` calls this workspace makes:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`] and the [`Value`] re-export.
//!
//! Numbers are written with Rust's shortest-round-trip float formatting, so
//! `serialize → parse` reproduces every finite `f64` bit-exactly. JSON has no
//! literal for non-finite floats; they are written as the strings
//! `"Infinity"`, `"-Infinity"` and `"NaN"`, which the serde subset's `f64`
//! deserializer accepts symmetrically.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Parse a JSON document into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1)
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("\"NaN\"");
    } else if f.is_infinite() {
        out.push_str(if f > 0.0 {
            "\"Infinity\""
        } else {
            "\"-Infinity\""
        });
    } else {
        // Rust's Display for f64 is the shortest string that parses back to
        // the same bits; keep a trailing `.0` so the value re-parses as a
        // float rather than an integer (harmless either way, since numeric
        // deserializers coerce).
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        Error::new(format!("JSON parse error at line {line}: {msg}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    // The Some(_) arm guarantees at least one byte remains.
                    let Some(c) = s.chars().next() else {
                        unreachable!("peeked byte vanished from the input")
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Only ASCII digits, signs, dots and exponents were consumed.
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            unreachable!("number span is pure ASCII")
        };
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), r#""a\"b""#);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
    }

    #[test]
    fn float_bits_survive() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123456.789e12, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn nonfinite_floats() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "\"Infinity\"");
        let back: f64 = from_str("\"-Infinity\"").unwrap();
        assert!(back.is_infinite() && back < 0.0);
        let back: f64 = from_str(&to_string(&f64::NAN).unwrap()).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn containers() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2,\n3]").unwrap(), v);
        let m: Value = parse(r#"{"a": [true, null], "b": {"c": 1e3}}"#).unwrap();
        assert_eq!(m.get("a").unwrap().as_seq().unwrap().len(), 2);
        assert_eq!(m.get("b").unwrap().get("c"), Some(&Value::Float(1000.0)));
    }

    #[test]
    fn pretty_printing_nests() {
        let v = Value::Map(vec![
            ("x".into(), Value::Seq(vec![Value::Int(1), Value::Int(2)])),
            ("y".into(), Value::Map(vec![])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"x\": [\n    1,\n    2\n  ],\n  \"y\": {}\n}");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        let e = parse("{\n\"a\": }").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn string_escapes() {
        let s: String = from_str(r#""tab\there A""#).unwrap();
        assert_eq!(s, "tab\there A");
        let round = to_string(&"line\nbreak\u{1}").unwrap();
        assert_eq!(from_str::<String>(&round).unwrap(), "line\nbreak\u{1}");
    }
}
