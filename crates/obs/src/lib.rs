//! Zero-cost simulation observability.
//!
//! Both simulation kernels in the workspace — the EDSPN token game in
//! `wsnem-petri` and the discrete-event CPU simulator in `wsnem-des` — are
//! generic over an [`Observer`]. The observer receives a callback at every
//! interesting point of a trajectory: transition firings, marking updates,
//! event dispatches, queue/heap depths, per-state enter/exit, and RNG draws.
//!
//! The hook is *zero-cost* in the literal sense: every call site in the
//! engines is guarded by `if O::ENABLED { ... }` where
//! [`Observer::ENABLED`] is an associated `const`. For the default
//! [`NoopObserver`] (`ENABLED = false`) the guard is a compile-time constant
//! and the whole branch — including any argument computation — is removed by
//! the compiler, leaving the exact pre-observability machine code. The perf
//! baseline (`BENCH_6.json`) is tracked in CI to keep this true.
//!
//! Observers must never perturb a trajectory: the engines sample their RNG
//! identically whether or not an observer is attached, and the randomized
//! equivalence batteries in `wsnem-petri` and `wsnem-des` assert bit-identical
//! outputs *and* synchronized RNG stream position for every observer in this
//! crate.
//!
//! Three concrete observers are provided:
//!
//! * [`TraceWriter`] — streams one NDJSON record per callback to any
//!   [`std::io::Write`] sink, with an optional record limit and sampling.
//! * [`StateTimeline`] — accumulates per-state sojourn totals, visit counts,
//!   and min/max sojourns from `state_enter`/`state_exit` pairs.
//! * [`Counters`] — a set of relaxed atomic event counters, shareable across
//!   threads by reference.
//!
//! [`Tee`] composes two observers into one, forwarding every callback to
//! both.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// Hook interface invoked by the simulation kernels along a trajectory.
///
/// All methods have empty default bodies, so an observer only implements the
/// callbacks it cares about. Every engine call site is guarded by
/// `if O::ENABLED`, so an observer with [`ENABLED`](Self::ENABLED)` = false`
/// (notably [`NoopObserver`]) costs nothing at runtime.
///
/// # Contract
///
/// Observers are *passive*: they must not panic in normal operation and they
/// cannot influence the simulation (no return values). The engines guarantee
/// in turn that attaching any observer leaves the trajectory and the RNG
/// stream position bit-identical to an unobserved run.
pub trait Observer {
    /// Whether the engines should emit callbacks at all. When `false`, every
    /// hook site compiles away entirely.
    const ENABLED: bool = true;

    /// A Petri transition fired at `time`. `immediate` distinguishes
    /// vanishing (immediate) firings from timed ones.
    #[inline]
    fn firing(&mut self, _time: f64, _transition: u32, _immediate: bool) {}

    /// A place's marking changed during a firing; `tokens` is the new count.
    #[inline]
    fn marking_update(&mut self, _time: f64, _place: u32, _tokens: u32) {}

    /// Depth of the Petri engine's timer structure after scheduling/popping.
    #[inline]
    fn timer_depth(&mut self, _time: f64, _depth: usize) {}

    /// A vanishing-marking chain of `steps` immediate firings was resolved.
    #[inline]
    fn vanishing_chain(&mut self, _time: f64, _steps: usize) {}

    /// A discrete event of the given kind was dispatched at `time`.
    #[inline]
    fn event(&mut self, _time: f64, _kind: &'static str) {}

    /// Pending-event-queue depth observed right after an event was popped.
    #[inline]
    fn queue_depth(&mut self, _time: f64, _depth: usize) {}

    /// The simulated system entered state `state` (a small dense index).
    #[inline]
    fn state_enter(&mut self, _time: f64, _state: u8) {}

    /// The simulated system left state `state` after `sojourn` time units.
    #[inline]
    fn state_exit(&mut self, _time: f64, _state: u8, _sojourn: f64) {}

    /// The engine consumed one draw from its random-number stream.
    #[inline]
    fn rng_draw(&mut self) {}
}

/// The do-nothing observer: `ENABLED = false`, so every instrumented engine
/// monomorphizes to its uninstrumented form. This is the default used by the
/// public `simulate`/`run` entry points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    const ENABLED: bool = false;
}

/// Composes two observers, forwarding every callback to both (`a` first).
///
/// `ENABLED` is the OR of the halves, so teeing a real observer with a
/// [`NoopObserver`] still instruments the run.
#[derive(Debug, Default)]
pub struct Tee<A, B> {
    /// First observer; receives each callback before `b`.
    pub a: A,
    /// Second observer.
    pub b: B,
}

impl<A, B> Tee<A, B> {
    /// Pair two observers.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn firing(&mut self, time: f64, transition: u32, immediate: bool) {
        self.a.firing(time, transition, immediate);
        self.b.firing(time, transition, immediate);
    }

    #[inline]
    fn marking_update(&mut self, time: f64, place: u32, tokens: u32) {
        self.a.marking_update(time, place, tokens);
        self.b.marking_update(time, place, tokens);
    }

    #[inline]
    fn timer_depth(&mut self, time: f64, depth: usize) {
        self.a.timer_depth(time, depth);
        self.b.timer_depth(time, depth);
    }

    #[inline]
    fn vanishing_chain(&mut self, time: f64, steps: usize) {
        self.a.vanishing_chain(time, steps);
        self.b.vanishing_chain(time, steps);
    }

    #[inline]
    fn event(&mut self, time: f64, kind: &'static str) {
        self.a.event(time, kind);
        self.b.event(time, kind);
    }

    #[inline]
    fn queue_depth(&mut self, time: f64, depth: usize) {
        self.a.queue_depth(time, depth);
        self.b.queue_depth(time, depth);
    }

    #[inline]
    fn state_enter(&mut self, time: f64, state: u8) {
        self.a.state_enter(time, state);
        self.b.state_enter(time, state);
    }

    #[inline]
    fn state_exit(&mut self, time: f64, state: u8, sojourn: f64) {
        self.a.state_exit(time, state, sojourn);
        self.b.state_exit(time, state, sojourn);
    }

    #[inline]
    fn rng_draw(&mut self) {
        self.a.rng_draw();
        self.b.rng_draw();
    }
}

/// Streams a trajectory as NDJSON — one self-describing JSON object per
/// line — to any [`Write`] sink.
///
/// Record schema (every record carries `"t"` and `"ev"`):
///
/// ```json
/// {"t":1.25,"ev":"firing","transition":3,"immediate":false}
/// {"t":1.25,"ev":"marking","place":0,"tokens":2}
/// {"t":1.25,"ev":"timer_depth","depth":7}
/// {"t":1.25,"ev":"vanishing","steps":2}
/// {"t":0.51,"ev":"event","kind":"arrival"}
/// {"t":0.51,"ev":"queue_depth","depth":1}
/// {"t":0.51,"ev":"state_enter","state":3,"label":"active"}
/// {"t":0.90,"ev":"state_exit","state":3,"label":"active","sojourn":0.39}
/// ```
///
/// When label tables are attached (see [`with_transition_labels`] /
/// [`with_state_labels`]) firing and state records also carry a
/// human-readable `"label"`.
///
/// The writer is *bounded*: after [`limit`](Self::with_limit) records it
/// silently stops emitting (the simulation continues unobserved), and
/// [`sample_every`](Self::with_sampling) keeps only every *n*-th record. I/O
/// errors are latched — the first failed write disables further output and is
/// reported by [`finish`](Self::finish).
///
/// RNG-draw callbacks are counted but not written (they would dominate the
/// stream); the total lands in the final summary record emitted by
/// [`finish`](Self::finish).
///
/// [`with_transition_labels`]: Self::with_transition_labels
/// [`with_state_labels`]: Self::with_state_labels
pub struct TraceWriter<W: Write> {
    sink: W,
    limit: Option<usize>,
    sample_every: usize,
    seen: usize,
    written: usize,
    rng_draws: u64,
    transition_labels: Vec<String>,
    state_labels: Vec<String>,
    error: Option<std::io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Create an unbounded, unsampled trace writer over `sink`.
    pub fn new(sink: W) -> Self {
        Self {
            sink,
            limit: None,
            sample_every: 1,
            seen: 0,
            written: 0,
            rng_draws: 0,
            transition_labels: Vec::new(),
            state_labels: Vec::new(),
            error: None,
        }
    }

    /// Stop writing after `limit` records (the run itself is unaffected).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Keep only every `n`-th record (`n >= 1`; `1` keeps everything).
    pub fn with_sampling(mut self, n: usize) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// Attach transition labels; firing records for `transition < len` gain a
    /// `"label"` field.
    pub fn with_transition_labels(mut self, labels: Vec<String>) -> Self {
        self.transition_labels = labels;
        self
    }

    /// Attach state labels; state records for `state < len` gain a
    /// `"label"` field.
    pub fn with_state_labels(mut self, labels: Vec<String>) -> Self {
        self.state_labels = labels;
        self
    }

    /// Number of records actually written so far.
    pub fn records_written(&self) -> usize {
        self.written
    }

    /// Emit a final `{"ev":"trace_end",...}` summary record (not subject to
    /// the limit), flush, and return the sink — or the first I/O error
    /// encountered at any point during the trace.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let line = format!(
            "{{\"ev\":\"trace_end\",\"records\":{},\"observed\":{},\"rng_draws\":{}}}\n",
            self.written, self.seen, self.rng_draws
        );
        self.sink.write_all(line.as_bytes())?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Should the next record be emitted? Advances the sampling counter.
    fn admit(&mut self) -> bool {
        if self.error.is_some() {
            return false;
        }
        if let Some(limit) = self.limit {
            if self.written >= limit {
                return false;
            }
        }
        let idx = self.seen;
        self.seen += 1;
        idx.is_multiple_of(self.sample_every)
    }

    fn emit(&mut self, body: std::fmt::Arguments<'_>) {
        let line = format!("{body}\n");
        if let Err(e) = self.sink.write_all(line.as_bytes()) {
            self.error = Some(e);
        } else {
            self.written += 1;
        }
    }

    fn label_field(labels: &[String], index: usize) -> String {
        match labels.get(index) {
            Some(l) => format!(",\"label\":{}", json_string(l)),
            None => String::new(),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters) for
/// user-supplied labels.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl<W: Write> Observer for TraceWriter<W> {
    #[inline]
    fn firing(&mut self, time: f64, transition: u32, immediate: bool) {
        if self.admit() {
            let label = Self::label_field(&self.transition_labels, transition as usize);
            self.emit(format_args!(
                "{{\"t\":{time},\"ev\":\"firing\",\"transition\":{transition},\"immediate\":{immediate}{label}}}"
            ));
        }
    }

    #[inline]
    fn marking_update(&mut self, time: f64, place: u32, tokens: u32) {
        if self.admit() {
            self.emit(format_args!(
                "{{\"t\":{time},\"ev\":\"marking\",\"place\":{place},\"tokens\":{tokens}}}"
            ));
        }
    }

    #[inline]
    fn timer_depth(&mut self, time: f64, depth: usize) {
        if self.admit() {
            self.emit(format_args!(
                "{{\"t\":{time},\"ev\":\"timer_depth\",\"depth\":{depth}}}"
            ));
        }
    }

    #[inline]
    fn vanishing_chain(&mut self, time: f64, steps: usize) {
        if self.admit() {
            self.emit(format_args!(
                "{{\"t\":{time},\"ev\":\"vanishing\",\"steps\":{steps}}}"
            ));
        }
    }

    #[inline]
    fn event(&mut self, time: f64, kind: &'static str) {
        if self.admit() {
            self.emit(format_args!(
                "{{\"t\":{time},\"ev\":\"event\",\"kind\":\"{kind}\"}}"
            ));
        }
    }

    #[inline]
    fn queue_depth(&mut self, time: f64, depth: usize) {
        if self.admit() {
            self.emit(format_args!(
                "{{\"t\":{time},\"ev\":\"queue_depth\",\"depth\":{depth}}}"
            ));
        }
    }

    #[inline]
    fn state_enter(&mut self, time: f64, state: u8) {
        if self.admit() {
            let label = Self::label_field(&self.state_labels, state as usize);
            self.emit(format_args!(
                "{{\"t\":{time},\"ev\":\"state_enter\",\"state\":{state}{label}}}"
            ));
        }
    }

    #[inline]
    fn state_exit(&mut self, time: f64, state: u8, sojourn: f64) {
        if self.admit() {
            let label = Self::label_field(&self.state_labels, state as usize);
            self.emit(format_args!(
                "{{\"t\":{time},\"ev\":\"state_exit\",\"state\":{state}{label},\"sojourn\":{sojourn}}}"
            ));
        }
    }

    #[inline]
    fn rng_draw(&mut self) {
        self.rng_draws += 1;
    }
}

/// Per-state sojourn statistics accumulated from a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateStats {
    /// Total time spent in this state.
    pub total: f64,
    /// Number of completed visits (matched enter/exit pairs).
    pub visits: u64,
    /// Shortest completed sojourn.
    pub min_sojourn: f64,
    /// Longest completed sojourn.
    pub max_sojourn: f64,
}

impl Default for StateStats {
    fn default() -> Self {
        Self {
            total: 0.0,
            visits: 0,
            min_sojourn: f64::INFINITY,
            max_sojourn: 0.0,
        }
    }
}

/// Accumulates a per-state sojourn histogram from `state_enter`/`state_exit`
/// callbacks.
///
/// State indices are small dense `u8`s (the DES kernel uses the 4-state
/// `[standby, powerup, idle, active]` order); the table grows on demand.
/// After a run, [`fraction`](Self::fraction) gives each state's share of the
/// total observed time — for the paper's CPU net this matches the per-state
/// split reported by the analytic backends.
#[derive(Debug, Clone, Default)]
pub struct StateTimeline {
    states: Vec<StateStats>,
    total: f64,
}

impl StateTimeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics for `state`, if it was ever visited.
    pub fn state(&self, state: u8) -> Option<&StateStats> {
        self.states.get(state as usize).filter(|s| s.visits > 0)
    }

    /// All per-state slots observed so far (indexed by state).
    pub fn states(&self) -> &[StateStats] {
        &self.states
    }

    /// Total time across all completed sojourns.
    pub fn total_time(&self) -> f64 {
        self.total
    }

    /// Fraction of total observed time spent in `state` (0 if nothing was
    /// observed).
    pub fn fraction(&self, state: u8) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.states
            .get(state as usize)
            .map_or(0.0, |s| s.total / self.total)
    }

    fn slot(&mut self, state: u8) -> &mut StateStats {
        let idx = state as usize;
        if idx >= self.states.len() {
            self.states.resize(idx + 1, StateStats::default());
        }
        &mut self.states[idx]
    }
}

impl Observer for StateTimeline {
    #[inline]
    fn state_exit(&mut self, _time: f64, state: u8, sojourn: f64) {
        let slot = self.slot(state);
        slot.total += sojourn;
        slot.visits += 1;
        slot.min_sojourn = slot.min_sojourn.min(sojourn);
        slot.max_sojourn = slot.max_sojourn.max(sojourn);
        self.total += sojourn;
    }
}

/// Lock-free event counters, incremented with relaxed atomics so a single
/// `Counters` can be shared by reference (e.g. `&Counters` implements
/// [`Observer`] too) and read concurrently.
#[derive(Debug, Default)]
pub struct Counters {
    /// Transition firings (Petri engine).
    pub firings: AtomicU64,
    /// Individual place-marking updates (Petri engine).
    pub marking_updates: AtomicU64,
    /// Timer-structure depth samples (Petri engine; one per timed firing).
    pub timer_samples: AtomicU64,
    /// Resolved vanishing chains (Petri engine).
    pub vanishing_chains: AtomicU64,
    /// Immediate firings inside vanishing chains (Petri engine).
    pub vanishing_steps: AtomicU64,
    /// Dispatched discrete events (DES kernel).
    pub events: AtomicU64,
    /// Queue-depth samples (DES kernel; one per dispatched event).
    pub queue_samples: AtomicU64,
    /// Observable state changes (DES kernel).
    pub state_changes: AtomicU64,
    /// RNG draws consumed by the engine.
    pub rng_draws: AtomicU64,
}

/// A plain-`u64` snapshot of a [`Counters`] set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Transition firings.
    pub firings: u64,
    /// Individual place-marking updates.
    pub marking_updates: u64,
    /// Timer-structure depth samples.
    pub timer_samples: u64,
    /// Resolved vanishing chains.
    pub vanishing_chains: u64,
    /// Immediate firings inside vanishing chains.
    pub vanishing_steps: u64,
    /// Dispatched discrete events.
    pub events: u64,
    /// Queue-depth samples.
    pub queue_samples: u64,
    /// Observable state changes.
    pub state_changes: u64,
    /// RNG draws consumed by the engine.
    pub rng_draws: u64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read every counter (relaxed; exact once the run has finished).
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            firings: self.firings.load(Ordering::Relaxed),
            marking_updates: self.marking_updates.load(Ordering::Relaxed),
            timer_samples: self.timer_samples.load(Ordering::Relaxed),
            vanishing_chains: self.vanishing_chains.load(Ordering::Relaxed),
            vanishing_steps: self.vanishing_steps.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            queue_samples: self.queue_samples.load(Ordering::Relaxed),
            state_changes: self.state_changes.load(Ordering::Relaxed),
            rng_draws: self.rng_draws.load(Ordering::Relaxed),
        }
    }
}

impl Observer for Counters {
    #[inline]
    fn firing(&mut self, _time: f64, _transition: u32, _immediate: bool) {
        self.firings.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn marking_update(&mut self, _time: f64, _place: u32, _tokens: u32) {
        self.marking_updates.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn timer_depth(&mut self, _time: f64, _depth: usize) {
        self.timer_samples.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn vanishing_chain(&mut self, _time: f64, steps: usize) {
        self.vanishing_chains.fetch_add(1, Ordering::Relaxed);
        self.vanishing_steps
            .fetch_add(steps as u64, Ordering::Relaxed);
    }

    #[inline]
    fn event(&mut self, _time: f64, _kind: &'static str) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn queue_depth(&mut self, _time: f64, _depth: usize) {
        self.queue_samples.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn state_enter(&mut self, _time: f64, _state: u8) {
        self.state_changes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn rng_draw(&mut self) {
        self.rng_draws.fetch_add(1, Ordering::Relaxed);
    }
}

/// `&Counters` observes too: the atomics make interior mutability safe, so a
/// shared counter set can watch a run while the owner keeps reading it.
impl Observer for &Counters {
    #[inline]
    fn firing(&mut self, _time: f64, _transition: u32, _immediate: bool) {
        self.firings.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn marking_update(&mut self, _time: f64, _place: u32, _tokens: u32) {
        self.marking_updates.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn timer_depth(&mut self, _time: f64, _depth: usize) {
        self.timer_samples.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn vanishing_chain(&mut self, _time: f64, steps: usize) {
        self.vanishing_chains.fetch_add(1, Ordering::Relaxed);
        self.vanishing_steps
            .fetch_add(steps as u64, Ordering::Relaxed);
    }

    #[inline]
    fn event(&mut self, _time: f64, _kind: &'static str) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn queue_depth(&mut self, _time: f64, _depth: usize) {
        self.queue_samples.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn state_enter(&mut self, _time: f64, _state: u8) {
        self.state_changes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn rng_draw(&mut self) {
        self.rng_draws.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<O: Observer>(obs: &mut O) {
        obs.firing(0.5, 3, false);
        obs.marking_update(0.5, 0, 2);
        obs.timer_depth(0.5, 4);
        obs.vanishing_chain(0.5, 2);
        obs.event(1.0, "arrival");
        obs.queue_depth(1.0, 1);
        obs.state_enter(1.0, 3);
        obs.state_exit(1.5, 3, 0.5);
        obs.rng_draw();
    }

    #[test]
    fn noop_is_disabled() {
        const { assert!(!NoopObserver::ENABLED) };
        // Methods are callable and do nothing.
        drive(&mut NoopObserver);
    }

    #[test]
    fn tee_enabled_is_or_of_halves() {
        const { assert!(!<Tee<NoopObserver, NoopObserver> as Observer>::ENABLED) };
        const { assert!(<Tee<Counters, NoopObserver> as Observer>::ENABLED) };
        const { assert!(<Tee<NoopObserver, Counters> as Observer>::ENABLED) };
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = Tee::new(Counters::new(), StateTimeline::new());
        drive(&mut tee);
        let snap = tee.a.snapshot();
        assert_eq!(snap.firings, 1);
        assert_eq!(snap.events, 1);
        assert_eq!(tee.b.state(3).unwrap().visits, 1);
    }

    #[test]
    fn trace_writer_emits_parseable_ndjson() {
        let mut w = TraceWriter::new(Vec::new())
            .with_transition_labels(vec!["t0".into(), "t1".into(), "t2".into(), "serve".into()])
            .with_state_labels(vec![
                "standby".into(),
                "powerup".into(),
                "idle".into(),
                "active".into(),
            ]);
        drive(&mut w);
        assert_eq!(w.records_written(), 8); // rng_draw is counted, not written
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 9); // 8 records + trace_end
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            // Balanced quotes is a cheap well-formedness proxy; the CLI
            // integration tests parse with a real JSON parser.
            assert_eq!(line.matches('"').count() % 2, 0, "{line}");
        }
        assert!(lines[0].contains("\"label\":\"serve\""));
        assert!(lines[6].contains("\"label\":\"active\""));
        assert!(lines[8].contains("\"ev\":\"trace_end\""));
        assert!(lines[8].contains("\"rng_draws\":1"));
    }

    #[test]
    fn trace_writer_limit_and_sampling() {
        let mut w = TraceWriter::new(Vec::new()).with_limit(3);
        for _ in 0..10 {
            drive(&mut w);
        }
        assert_eq!(w.records_written(), 3);

        let mut s = TraceWriter::new(Vec::new()).with_sampling(4);
        for i in 0..16 {
            s.marking_update(i as f64, 0, i);
        }
        assert_eq!(s.records_written(), 4);
        let text = String::from_utf8(s.finish().unwrap()).unwrap();
        assert!(text.contains("\"tokens\":0"));
        assert!(text.contains("\"tokens\":4"));
        assert!(!text.contains("\"tokens\":5"));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn state_timeline_accumulates_fractions() {
        let mut tl = StateTimeline::new();
        tl.state_enter(0.0, 0);
        tl.state_exit(3.0, 0, 3.0);
        tl.state_enter(3.0, 2);
        tl.state_exit(4.0, 2, 1.0);
        tl.state_enter(4.0, 0);
        tl.state_exit(8.0, 0, 4.0);
        assert!((tl.total_time() - 8.0).abs() < 1e-12);
        assert!((tl.fraction(0) - 7.0 / 8.0).abs() < 1e-12);
        assert!((tl.fraction(2) - 1.0 / 8.0).abs() < 1e-12);
        assert_eq!(tl.fraction(1), 0.0);
        let s0 = tl.state(0).unwrap();
        assert_eq!(s0.visits, 2);
        assert_eq!(s0.min_sojourn, 3.0);
        assert_eq!(s0.max_sojourn, 4.0);
        assert!(tl.state(1).is_none());
    }

    #[test]
    fn counters_shared_by_reference() {
        let counters = Counters::new();
        {
            let mut obs = &counters;
            drive(&mut obs);
            drive(&mut obs);
        }
        let snap = counters.snapshot();
        assert_eq!(snap.firings, 2);
        assert_eq!(snap.vanishing_chains, 2);
        assert_eq!(snap.vanishing_steps, 4);
        assert_eq!(snap.rng_draws, 2);
        assert_eq!(snap.state_changes, 2);
    }
}
