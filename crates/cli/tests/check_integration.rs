//! End-to-end tests of `wsnem check` and its satellites: the three seeded
//! mutation fixtures must each fail with their *specific* lint code, the
//! builtins must come back clean under `--deny warnings`, the run/compare
//! preflight must refuse unsound scenarios before any event fires, and
//! `gen --check` must catch fleet drift against the manifest.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn wsnem(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wsnem"))
        .args(args)
        .output()
        .expect("spawn wsnem")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsnem-check-integration-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn check_all_builtins_is_clean_even_denying_warnings() {
    let out = wsnem(&["check", "--all", "--deny", "warnings"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
}

#[test]
fn unstable_lambda_fixture_fails_with_e005() {
    let out = wsnem(&[
        "check",
        &fixture("unstable-lambda.toml"),
        "--format",
        "json",
    ]);
    assert!(!out.status.success());
    let json = stdout(&out);
    assert!(json.contains("\"code\": \"E005\""), "{json}");
    assert!(json.contains("unstable-queue"), "{json}");
    // The granular code, not the generic catch-all.
    assert!(!json.contains("\"code\": \"E004\""), "{json}");
    assert!(stderr(&out).contains("1 error(s)"), "{}", stderr(&out));
}

#[test]
fn deadlock_net_fixture_fails_with_e007() {
    let out = wsnem(&["check", &fixture("deadlock.net.json")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("error[E007]"), "{text}");
    assert!(text.contains("inhibitor"), "{text}");
}

#[test]
fn dead_transition_net_fixture_fails_with_e008() {
    let out = wsnem(&["check", &fixture("dead-transition.net.json")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("error[E008]"), "{text}");
    assert!(text.contains("dead"), "{text}");
    // The live cycle keeps this net deadlock-free: E008, not E007.
    assert!(!text.contains("E007"), "{text}");
}

#[test]
fn checking_the_fixture_directory_surfaces_all_three_codes() {
    // A directory target walks every .toml/.json a fleet run would pick up,
    // dispatching *.net.json members to the net passes.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let out = wsnem(&["check", dir.to_str().unwrap()]);
    assert!(!out.status.success());
    let text = stdout(&out);
    for code in ["E005", "E007", "E008"] {
        assert!(text.contains(code), "missing {code} in: {text}");
    }
}

#[test]
fn lint_overrides_rewrite_severities() {
    // Allowing the specific code turns the failing fixture clean — the
    // catch-all must not resurrect it as E004.
    let out = wsnem(&[
        "check",
        &fixture("unstable-lambda.toml"),
        "-A",
        "unstable-queue",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Denying an info-severity lint makes a clean builtin fail.
    let out = wsnem(&[
        "check",
        "--builtin",
        "paper-defaults",
        "-D",
        "structural-class",
    ]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("error[I001]"), "{}", stdout(&out));

    // Unknown lints are rejected with the registry listed.
    let out = wsnem(&["check", "--all", "-D", "no-such-lint"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown lint `no-such-lint`"), "{err}");
    assert!(err.contains("E005"), "{err}");
}

#[test]
fn run_preflight_aborts_before_simulation_and_no_check_forces() {
    let out = wsnem(&["run", &fixture("unstable-lambda.toml")]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("E005"), "{err}");
    assert!(err.contains("nothing was simulated"), "{err}");
    // No report, no batch line: the run aborted before any event fired.
    assert_eq!(stdout(&out), "", "no simulation output expected");

    // --no-check skips the preflight; the failure (if any) is the runner's.
    let out = wsnem(&[
        "run",
        &fixture("unstable-lambda.toml"),
        "--no-check",
        "--quick",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(!err.contains("nothing was simulated"), "{err}");
}

#[test]
fn compare_preflight_aborts_on_unsound_scenarios() {
    let out = wsnem(&["compare", &fixture("unstable-lambda.toml"), "--quick"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("E005"), "{err}");
    assert!(err.contains("nothing was simulated"), "{err}");
}

#[test]
fn validate_exits_non_zero_with_coded_diagnostics() {
    let out = wsnem(&["validate", &fixture("unstable-lambda.toml")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("error[E005]"), "{text}");
    assert!(
        stderr(&out).contains("1 of 1 file(s) invalid"),
        "{}",
        stderr(&out)
    );

    // Clean net specs validate too (check --only-schema semantics).
    let out = wsnem(&[
        "validate",
        &fixture("unstable-lambda.toml"),
        &fixture("deadlock.net.json"),
    ]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("error[E007]"), "{}", stdout(&out));
}

#[test]
fn gen_check_verifies_fleet_against_manifest() {
    let dir = temp_dir("gen");
    let dir_s = dir.to_str().unwrap();
    let out = wsnem(&["gen", dir_s, "--field", "lambda=0.25:0.75:3"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Pristine fleet verifies clean.
    let out = wsnem(&["gen", dir_s, "--check"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("matches its manifest"),
        "{}",
        stderr(&out)
    );

    // Deleting a listed file fails with E009 naming it.
    std::fs::remove_file(dir.join("fleet-2.toml")).unwrap();
    let out = wsnem(&["gen", dir_s, "--check"]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("error[E009]"), "{text}");
    assert!(text.contains("fleet-2.toml"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_json_envelope_carries_counts_and_locations() {
    let out = wsnem(&["check", "--builtin", "paper-defaults", "--format", "json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = stdout(&out);
    let v = serde_json::parse(&json).expect("valid JSON");
    let map = |v: &serde_json::Value, k: &str| -> serde_json::Value {
        match v {
            serde_json::Value::Map(entries) => entries
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing key `{k}` in {v:?}")),
            other => panic!("expected map, got {other:?}"),
        }
    };
    // The parser reads in-range integers as Int regardless of the writer's
    // unsigned origin.
    assert_eq!(map(&v, "checked"), serde_json::Value::Int(1));
    let counts = map(&v, "counts");
    assert_eq!(map(&counts, "errors"), serde_json::Value::Int(0));
    match map(&v, "diagnostics") {
        serde_json::Value::Seq(diags) => {
            assert!(!diags.is_empty(), "builtins report informational findings");
            for d in &diags {
                assert_eq!(map(d, "severity"), serde_json::Value::Str("info".into()));
            }
        }
        other => panic!("expected diagnostics array, got {other:?}"),
    }
}
