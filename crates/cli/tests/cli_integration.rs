//! End-to-end tests of the `wsnem` binary: multi-hop CSV columns, RFC 4180
//! quoting, the `topology` inspector, and the non-zero exit paths for
//! invalid (cyclic / orphaned) topologies.

use std::path::PathBuf;
use std::process::{Command, Output};

fn wsnem(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wsnem"))
        .args(args)
        .output()
        .expect("spawn wsnem")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_file(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wsnem-cli-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

/// Split one CSV record into fields, honoring RFC 4180 quoting.
fn csv_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut inside = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if inside && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => inside = !inside,
            ',' if !inside => fields.push(std::mem::take(&mut cur)),
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields
}

#[test]
fn tree_builtin_csv_has_topology_columns() {
    let out = wsnem(&[
        "run",
        "--builtin",
        "tree-collection",
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header: Vec<String> = csv_fields(lines.next().expect("header"));
    for col in [
        "node",
        "hop_depth",
        "forwarded_rx_pkts_s",
        "is_bottleneck_relay",
    ] {
        assert!(
            header.iter().any(|h| h.trim() == col),
            "missing column `{col}` in {header:?}"
        );
    }
    let node_col = header.iter().position(|h| h.trim() == "node").unwrap();
    let depth_col = header.iter().position(|h| h.trim() == "hop_depth").unwrap();
    let relay_col = header
        .iter()
        .position(|h| h.trim() == "is_bottleneck_relay")
        .unwrap();
    let rows: Vec<Vec<String>> = lines.map(csv_fields).collect();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), header.len(), "row {i} column count: {row:?}");
    }
    let node_rows: Vec<&Vec<String>> = rows.iter().filter(|r| !r[node_col].is_empty()).collect();
    assert_eq!(node_rows.len(), 7, "one CSV row per tree node");
    let root = node_rows.iter().find(|r| r[node_col] == "root").unwrap();
    assert_eq!(root[depth_col], "1");
    assert_eq!(root[relay_col], "true");
    let leaf = node_rows.iter().find(|r| r[node_col] == "leaf-3").unwrap();
    assert_eq!(leaf[depth_col], "3");
    assert_eq!(leaf[relay_col], "false");
}

#[test]
fn csv_quoting_survives_comma_in_scenario_and_node_names() {
    let scenario = r#"
schema_version = 2
name = "field, north"
description = "comma-named scenario"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markov"]

[cpu]
lambda = 0.5
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 300.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0

[[network.nodes]]
name = "relay, east"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

[[network.nodes]]
name = "leaf"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

[network.topology]
Chain = {}
"#;
    let path = temp_file("comma.toml", scenario);
    let out = wsnem(&["run", path.to_str().unwrap(), "--format", "csv"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let header_cols = csv_fields(text.lines().next().unwrap()).len();
    for line in text.lines().skip(1) {
        let fields = csv_fields(line);
        assert_eq!(fields.len(), header_cols, "mis-quoted row: {line}");
        assert_eq!(fields[0], "field, north", "scenario name field: {line}");
    }
    assert!(
        text.contains("\"field, north\""),
        "scenario name must be quoted: {text}"
    );
    assert!(
        text.contains("\"relay, east\""),
        "node name must be quoted: {text}"
    );
}

#[test]
fn topology_subcommand_prints_routing_table() {
    let out = wsnem(&["topology", "--builtin", "tree-collection"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("tree topology"), "{text}");
    assert!(text.contains("max depth 3"), "{text}");
    // Load-ranked (this inspector runs no model — the lifetime-ranked
    // bottleneck relay is `wsnem run`'s job).
    assert!(text.contains("heaviest relay: `root`"), "{text}");
    assert!(text.contains("(sink)"), "{text}");
    assert!(text.contains("radio (duty)"), "{text}");
    assert!(text.contains("cc2420-class (5.00%)"), "{text}");
}

fn mesh_scenario_with_routes(routes: &str) -> String {
    format!(
        r#"
schema_version = 2
name = "bad-topo"
description = "invalid routing"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markov"]

[cpu]
lambda = 0.5
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 300.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0

[[network.nodes]]
name = "a"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

[[network.nodes]]
name = "b"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

{routes}
"#
    )
}

#[test]
fn cyclic_topology_fails_with_nonzero_exit() {
    let path = temp_file(
        "cycle.toml",
        &mesh_scenario_with_routes(
            r#"
[network.topology.Mesh]
routes = [
    {from = "a", to = "b"},
    {from = "b", to = "a"},
]
"#,
        ),
    );
    let out = wsnem(&["run", path.to_str().unwrap()]);
    assert!(!out.status.success(), "a routing cycle must fail the run");
    assert!(stderr(&out).contains("cycle"), "stderr: {}", stderr(&out));

    let out = wsnem(&["topology", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cycle"), "stderr: {}", stderr(&out));
}

#[test]
fn orphan_topology_fails_with_nonzero_exit() {
    let path = temp_file(
        "orphan.toml",
        &mesh_scenario_with_routes(
            r#"
[network.topology.Mesh]
routes = [
    {from = "a", to = "sink"},
]
"#,
        ),
    );
    for subcommand in ["run", "validate", "topology"] {
        let out = wsnem(&[subcommand, path.to_str().unwrap()]);
        assert!(
            !out.status.success(),
            "{subcommand}: an orphan node must fail"
        );
        let all = format!("{}{}", stdout(&out), stderr(&out));
        assert!(all.contains("orphan"), "{subcommand}: {all}");
    }
}

#[test]
fn compare_emits_full_backend_matrix_within_tolerance() {
    // The acceptance criterion: `wsnem compare` on a built-in scenario
    // emits a Table 4/5-style matrix covering all four backends with
    // per-state deltas within the paper's 2 pp tolerance.
    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--max-delta-pp",
        "2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for backend in ["Markov", "ErlangPhase", "PetriNet", "Des"] {
        assert!(text.contains(backend), "matrix missing `{backend}`: {text}");
    }
    assert!(text.contains("reference Des"), "{text}");
    assert!(text.contains("max mean |Δ|"), "{text}");
    assert!(text.contains("wall-clock per backend"), "{text}");
    assert!(
        stderr(&out).contains("within tolerance"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn compare_csv_and_json_formats() {
    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header = csv_fields(lines.next().expect("header"));
    assert!(
        header.iter().any(|h| h == "mean_abs_delta_pp"),
        "{header:?}"
    );
    assert!(header.iter().any(|h| h == "d_active_pp"), "{header:?}");
    let rows: Vec<Vec<String>> = lines.map(csv_fields).collect();
    assert_eq!(rows.len(), 4, "one row per backend: {text}");
    for row in &rows {
        assert_eq!(row.len(), header.len(), "{row:?}");
    }

    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"max_mean_abs_delta_pp\""), "{text}");
    assert!(text.contains("\"backend_seconds\""), "{text}");
}

#[test]
fn compare_max_delta_gate_fails_when_exceeded() {
    // An absurdly tight tolerance must turn Monte-Carlo noise into a
    // non-zero exit — the CI gate's failure path.
    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--max-delta-pp",
        "0.000001",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("exceeds tolerance"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn unknown_backend_in_scenario_file_gets_did_you_mean() {
    let scenario = r#"
schema_version = 3
name = "typo"
description = "backend name typo"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markvo"]

[cpu]
lambda = 0.5
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 300.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0
"#;
    let path = temp_file("typo.toml", scenario);
    let out = wsnem(&["validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let all = format!("{}{}", stdout(&out), stderr(&out));
    assert!(all.contains("unknown backend `Markvo`"), "{all}");
    assert!(all.contains("did you mean `Markov`?"), "{all}");
    assert!(all.contains("registered backends"), "{all}");
}

#[test]
fn radio_preset_inspector_prints_power_split_and_lifetime_table() {
    let out = wsnem(&["radio", "--preset", "cc2420-class"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("radio `cc2420-class`"), "{text}");
    assert!(text.contains("duty cycle 5.00%"), "{text}");
    for col in ["tx%", "rx%", "listen%", "sleep%", "mean mW", "lifetime"] {
        assert!(text.contains(col), "missing `{col}`: {text}");
    }
    // The lifetime-vs-traffic table actually varies with traffic.
    assert!(text.contains("93.0"), "idle lifetime row: {text}");
    assert!(text.contains("52.4"), "busy lifetime row: {text}");
}

#[test]
fn radio_inspector_reads_scenario_specs_and_overrides() {
    let out = wsnem(&["radio", "--builtin", "mac-heterogeneous-tree"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 distinct radio spec(s)"), "{text}");
    assert!(text.contains("radio `x-mac` — network default"), "{text}");
    assert!(
        text.contains("radio `cc2420-always-on` — node `root` override"),
        "{text}"
    );
    assert!(text.contains("duty cycle 100.00%"), "{text}");
}

#[test]
fn radio_inspector_rejects_unknown_presets() {
    let out = wsnem(&["radio", "--preset", "cc9999"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown radio preset `cc9999`"), "{err}");
    assert!(err.contains("cc2420-class"), "{err}");
}

#[test]
fn lpl_sweep_csv_carries_radio_columns_and_the_tradeoff() {
    // Acceptance criterion: the builtin LPL period sweep shows the
    // listen-vs-preamble tradeoff end to end, with per-node duty-cycle and
    // radio columns in the run CSV.
    let out = wsnem(&[
        "run",
        "--builtin",
        "lpl-period-sweep",
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header: Vec<String> = csv_fields(lines.next().expect("header"));
    for col in ["radio_spec", "radio_duty_cycle", "radio_power_mw"] {
        assert!(
            header.iter().any(|h| h.trim() == col),
            "missing column `{col}` in {header:?}"
        );
    }
    let col = |name: &str| header.iter().position(|h| h.trim() == name).unwrap();
    let (node_col, spec_col, duty_col, radio_mw_col) = (
        col("node"),
        col("radio_spec"),
        col("radio_duty_cycle"),
        col("radio_power_mw"),
    );
    let rows: Vec<Vec<String>> = lines.map(csv_fields).collect();
    let node_rows: Vec<&Vec<String>> = rows.iter().filter(|r| !r[node_col].is_empty()).collect();
    assert_eq!(node_rows.len(), 6, "one CSV row per sweep point");
    let by_name = |n: &str| *node_rows.iter().find(|r| r[node_col] == n).unwrap();
    let radio_mw = |n: &str| by_name(n)[radio_mw_col].parse::<f64>().unwrap();
    // Duty cycle falls with the period; radio power is U-shaped.
    assert_eq!(by_name("p-20ms")[spec_col], "b-mac");
    assert_eq!(by_name("p-20ms")[duty_col], "0.125");
    assert_eq!(by_name("p-1s")[duty_col], "0.0025");
    assert!(radio_mw("p-20ms") > radio_mw("p-100ms"), "listen slope");
    assert!(radio_mw("p-1s") > radio_mw("p-250ms"), "preamble slope");
    assert!(radio_mw("p-250ms") > radio_mw("p-100ms"), "preamble slope");
}

#[test]
fn v4_toml_file_with_radio_sections_loads_and_runs() {
    let scenario = r#"
schema_version = 4
name = "radio-overrides"
description = "hand-authored v4 file with a network MAC and a node override"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markov"]

[cpu]
lambda = 0.5
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 300.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0

[[network.nodes]]
name = "relay"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0
radio = { Preset = "cc2420-always-on" }

[[network.nodes]]
name = "leaf"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

[network.topology]
Chain = {}

[network.radio.XMac]
check_interval_s = 0.5
strobe_s = 0.004
ack_s = 0.001
"#;
    let path = temp_file("radio-v4.toml", scenario);
    let out = wsnem(&["run", path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("radio x-mac"), "{text}");
    assert!(text.contains("radio cc2420-always-on"), "{text}");
    // The always-on relay is both the routing and lifetime hot spot.
    assert!(text.contains("bottleneck `relay`"), "{text}");

    // The same file downgraded to v3 must be rejected, not misread.
    let v3 = scenario.replace("schema_version = 4", "schema_version = 3");
    let path = temp_file("radio-v3.toml", &v3);
    let out = wsnem(&["validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let all = format!("{}{}", stdout(&out), stderr(&out));
    assert!(all.contains("schema_version >= 4"), "{all}");
}

#[test]
fn quick_smoke_runs_every_builtin_including_multihop() {
    let out = wsnem(&["run", "--all", "--quick"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for name in [
        "tree-collection",
        "chain-3hop",
        "mesh-field",
        "lpl-period-sweep",
        "mac-heterogeneous-tree",
    ] {
        assert!(text.contains(name), "summary missing `{name}`");
    }
    assert!(
        text.contains("network[tree, Markov, radio cc2420-class]"),
        "{text}"
    );
    assert!(
        text.contains("network[tree, Markov, radio x-mac]"),
        "{text}"
    );
    assert!(text.contains("bottleneck relay `root`"), "{text}");
}
