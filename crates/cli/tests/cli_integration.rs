//! End-to-end tests of the `wsnem` binary: multi-hop CSV columns, RFC 4180
//! quoting, the `topology` inspector, and the non-zero exit paths for
//! invalid (cyclic / orphaned) topologies.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use std::path::PathBuf;
use std::process::{Command, Output};

fn wsnem(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wsnem"))
        .args(args)
        .output()
        .expect("spawn wsnem")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_file(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wsnem-cli-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

/// Split one CSV record into fields, honoring RFC 4180 quoting.
fn csv_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut inside = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if inside && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => inside = !inside,
            ',' if !inside => fields.push(std::mem::take(&mut cur)),
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields
}

#[test]
fn tree_builtin_csv_has_topology_columns() {
    let out = wsnem(&[
        "run",
        "--builtin",
        "tree-collection",
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header: Vec<String> = csv_fields(lines.next().expect("header"));
    for col in [
        "node",
        "hop_depth",
        "forwarded_rx_pkts_s",
        "is_bottleneck_relay",
    ] {
        assert!(
            header.iter().any(|h| h.trim() == col),
            "missing column `{col}` in {header:?}"
        );
    }
    let node_col = header.iter().position(|h| h.trim() == "node").unwrap();
    let depth_col = header.iter().position(|h| h.trim() == "hop_depth").unwrap();
    let relay_col = header
        .iter()
        .position(|h| h.trim() == "is_bottleneck_relay")
        .unwrap();
    let rows: Vec<Vec<String>> = lines.map(csv_fields).collect();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), header.len(), "row {i} column count: {row:?}");
    }
    let node_rows: Vec<&Vec<String>> = rows.iter().filter(|r| !r[node_col].is_empty()).collect();
    assert_eq!(node_rows.len(), 7, "one CSV row per tree node");
    let root = node_rows.iter().find(|r| r[node_col] == "root").unwrap();
    assert_eq!(root[depth_col], "1");
    assert_eq!(root[relay_col], "true");
    let leaf = node_rows.iter().find(|r| r[node_col] == "leaf-3").unwrap();
    assert_eq!(leaf[depth_col], "3");
    assert_eq!(leaf[relay_col], "false");
}

#[test]
fn csv_quoting_survives_comma_in_scenario_and_node_names() {
    let scenario = r#"
schema_version = 2
name = "field, north"
description = "comma-named scenario"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markov"]

[cpu]
lambda = 0.5
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 300.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0

[[network.nodes]]
name = "relay, east"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

[[network.nodes]]
name = "leaf"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

[network.topology]
Chain = {}
"#;
    let path = temp_file("comma.toml", scenario);
    let out = wsnem(&["run", path.to_str().unwrap(), "--format", "csv"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let header_cols = csv_fields(text.lines().next().unwrap()).len();
    for line in text.lines().skip(1) {
        let fields = csv_fields(line);
        assert_eq!(fields.len(), header_cols, "mis-quoted row: {line}");
        assert_eq!(fields[0], "field, north", "scenario name field: {line}");
    }
    assert!(
        text.contains("\"field, north\""),
        "scenario name must be quoted: {text}"
    );
    assert!(
        text.contains("\"relay, east\""),
        "node name must be quoted: {text}"
    );
}

#[test]
fn topology_subcommand_prints_routing_table() {
    let out = wsnem(&["topology", "--builtin", "tree-collection"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("tree topology"), "{text}");
    assert!(text.contains("max depth 3"), "{text}");
    // Load-ranked (this inspector runs no model — the lifetime-ranked
    // bottleneck relay is `wsnem run`'s job).
    assert!(text.contains("heaviest relay: `root`"), "{text}");
    assert!(text.contains("(sink)"), "{text}");
    assert!(text.contains("radio (duty)"), "{text}");
    assert!(text.contains("cc2420-class (5.00%)"), "{text}");
}

fn mesh_scenario_with_routes(routes: &str) -> String {
    format!(
        r#"
schema_version = 2
name = "bad-topo"
description = "invalid routing"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markov"]

[cpu]
lambda = 0.5
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 300.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0

[[network.nodes]]
name = "a"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

[[network.nodes]]
name = "b"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

{routes}
"#
    )
}

#[test]
fn cyclic_topology_fails_with_nonzero_exit() {
    let path = temp_file(
        "cycle.toml",
        &mesh_scenario_with_routes(
            r#"
[network.topology.Mesh]
routes = [
    {from = "a", to = "b"},
    {from = "b", to = "a"},
]
"#,
        ),
    );
    let out = wsnem(&["run", path.to_str().unwrap()]);
    assert!(!out.status.success(), "a routing cycle must fail the run");
    assert!(stderr(&out).contains("cycle"), "stderr: {}", stderr(&out));

    let out = wsnem(&["topology", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cycle"), "stderr: {}", stderr(&out));
}

#[test]
fn orphan_topology_fails_with_nonzero_exit() {
    let path = temp_file(
        "orphan.toml",
        &mesh_scenario_with_routes(
            r#"
[network.topology.Mesh]
routes = [
    {from = "a", to = "sink"},
]
"#,
        ),
    );
    for subcommand in ["run", "validate", "topology"] {
        let out = wsnem(&[subcommand, path.to_str().unwrap()]);
        assert!(
            !out.status.success(),
            "{subcommand}: an orphan node must fail"
        );
        let all = format!("{}{}", stdout(&out), stderr(&out));
        assert!(all.contains("orphan"), "{subcommand}: {all}");
    }
}

#[test]
fn compare_emits_full_backend_matrix_within_tolerance() {
    // The acceptance criterion: `wsnem compare` on a built-in scenario
    // emits a Table 4/5-style matrix covering all four backends with
    // per-state deltas within the paper's 2 pp tolerance.
    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--max-delta-pp",
        "2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for backend in ["Markov", "ErlangPhase", "PetriNet", "Des"] {
        assert!(text.contains(backend), "matrix missing `{backend}`: {text}");
    }
    assert!(text.contains("reference Des"), "{text}");
    assert!(text.contains("max mean |Δ|"), "{text}");
    assert!(text.contains("wall-clock per backend"), "{text}");
    assert!(
        stderr(&out).contains("within tolerance"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn compare_csv_and_json_formats() {
    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header = csv_fields(lines.next().expect("header"));
    assert!(
        header.iter().any(|h| h == "mean_abs_delta_pp"),
        "{header:?}"
    );
    assert!(header.iter().any(|h| h == "d_active_pp"), "{header:?}");
    let rows: Vec<Vec<String>> = lines.map(csv_fields).collect();
    assert_eq!(rows.len(), 5, "one row per backend: {text}");
    for row in &rows {
        assert_eq!(row.len(), header.len(), "{row:?}");
    }

    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"max_mean_abs_delta_pp\""), "{text}");
    assert!(text.contains("\"backend_seconds\""), "{text}");
}

#[test]
fn compare_max_delta_gate_fails_when_exceeded() {
    // An absurdly tight tolerance must turn Monte-Carlo noise into a
    // non-zero exit — the CI gate's failure path.
    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--max-delta-pp",
        "0.000001",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("exceeds tolerance"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn unknown_backend_in_scenario_file_gets_did_you_mean() {
    let scenario = r#"
schema_version = 3
name = "typo"
description = "backend name typo"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markvo"]

[cpu]
lambda = 0.5
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 300.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0
"#;
    let path = temp_file("typo.toml", scenario);
    let out = wsnem(&["validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let all = format!("{}{}", stdout(&out), stderr(&out));
    assert!(all.contains("unknown backend `Markvo`"), "{all}");
    assert!(all.contains("did you mean `Markov`?"), "{all}");
    assert!(all.contains("registered backends"), "{all}");
}

#[test]
fn radio_preset_inspector_prints_power_split_and_lifetime_table() {
    let out = wsnem(&["radio", "--preset", "cc2420-class"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("radio `cc2420-class`"), "{text}");
    assert!(text.contains("duty cycle 5.00%"), "{text}");
    for col in ["tx%", "rx%", "listen%", "sleep%", "mean mW", "lifetime"] {
        assert!(text.contains(col), "missing `{col}`: {text}");
    }
    // The lifetime-vs-traffic table actually varies with traffic.
    assert!(text.contains("93.0"), "idle lifetime row: {text}");
    assert!(text.contains("52.4"), "busy lifetime row: {text}");
}

#[test]
fn radio_inspector_reads_scenario_specs_and_overrides() {
    let out = wsnem(&["radio", "--builtin", "mac-heterogeneous-tree"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 distinct radio spec(s)"), "{text}");
    assert!(text.contains("radio `x-mac` — network default"), "{text}");
    assert!(
        text.contains("radio `cc2420-always-on` — node `root` override"),
        "{text}"
    );
    assert!(text.contains("duty cycle 100.00%"), "{text}");
}

#[test]
fn radio_inspector_rejects_unknown_presets() {
    let out = wsnem(&["radio", "--preset", "cc9999"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown radio preset `cc9999`"), "{err}");
    assert!(err.contains("cc2420-class"), "{err}");
}

#[test]
fn lpl_sweep_csv_carries_radio_columns_and_the_tradeoff() {
    // Acceptance criterion: the builtin LPL period sweep shows the
    // listen-vs-preamble tradeoff end to end, with per-node duty-cycle and
    // radio columns in the run CSV.
    let out = wsnem(&[
        "run",
        "--builtin",
        "lpl-period-sweep",
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header: Vec<String> = csv_fields(lines.next().expect("header"));
    for col in ["radio_spec", "radio_duty_cycle", "radio_power_mw"] {
        assert!(
            header.iter().any(|h| h.trim() == col),
            "missing column `{col}` in {header:?}"
        );
    }
    let col = |name: &str| header.iter().position(|h| h.trim() == name).unwrap();
    let (node_col, spec_col, duty_col, radio_mw_col) = (
        col("node"),
        col("radio_spec"),
        col("radio_duty_cycle"),
        col("radio_power_mw"),
    );
    let rows: Vec<Vec<String>> = lines.map(csv_fields).collect();
    let node_rows: Vec<&Vec<String>> = rows.iter().filter(|r| !r[node_col].is_empty()).collect();
    assert_eq!(node_rows.len(), 6, "one CSV row per sweep point");
    let by_name = |n: &str| *node_rows.iter().find(|r| r[node_col] == n).unwrap();
    let radio_mw = |n: &str| by_name(n)[radio_mw_col].parse::<f64>().unwrap();
    // Duty cycle falls with the period; radio power is U-shaped.
    assert_eq!(by_name("p-20ms")[spec_col], "b-mac");
    assert_eq!(by_name("p-20ms")[duty_col], "0.125");
    assert_eq!(by_name("p-1s")[duty_col], "0.0025");
    assert!(radio_mw("p-20ms") > radio_mw("p-100ms"), "listen slope");
    assert!(radio_mw("p-1s") > radio_mw("p-250ms"), "preamble slope");
    assert!(radio_mw("p-250ms") > radio_mw("p-100ms"), "preamble slope");
}

#[test]
fn v4_toml_file_with_radio_sections_loads_and_runs() {
    let scenario = r#"
schema_version = 4
name = "radio-overrides"
description = "hand-authored v4 file with a network MAC and a node override"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markov"]

[cpu]
lambda = 0.5
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 300.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0

[[network.nodes]]
name = "relay"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0
radio = { Preset = "cc2420-always-on" }

[[network.nodes]]
name = "leaf"
event_rate = 0.5
tx_per_event = 1.0
rx_rate = 0.0

[network.topology]
Chain = {}

[network.radio.XMac]
check_interval_s = 0.5
strobe_s = 0.004
ack_s = 0.001
"#;
    let path = temp_file("radio-v4.toml", scenario);
    let out = wsnem(&["run", path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("radio x-mac"), "{text}");
    assert!(text.contains("radio cc2420-always-on"), "{text}");
    // The always-on relay is both the routing and lifetime hot spot.
    assert!(text.contains("bottleneck `relay`"), "{text}");

    // The same file downgraded to v3 must be rejected, not misread.
    let v3 = scenario.replace("schema_version = 4", "schema_version = 3");
    let path = temp_file("radio-v3.toml", &v3);
    let out = wsnem(&["validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let all = format!("{}{}", stdout(&out), stderr(&out));
    assert!(all.contains("schema_version >= 4"), "{all}");
}

/// Minimal NDJSON validity check: every line is one JSON object that
/// `serde_json` parses. Returns the parsed values.
fn parse_ndjson(text: &str) -> Vec<serde_json::Value> {
    text.lines()
        .map(|line| {
            serde_json::parse(line).unwrap_or_else(|e| panic!("invalid NDJSON line `{line}`: {e}"))
        })
        .collect()
}

/// Numeric field of a parsed JSON object (integers and floats both count).
fn num(v: &serde_json::Value, key: &str) -> f64 {
    match v.get(key) {
        Some(serde_json::Value::Int(i)) => *i as f64,
        Some(serde_json::Value::UInt(u)) => *u as f64,
        Some(serde_json::Value::Float(f)) => *f,
        other => panic!("field `{key}` is not a number: {other:?}"),
    }
}

#[test]
fn trace_emits_ndjson_whose_sojourns_match_the_report() {
    // Acceptance criterion: the traced per-state sojourn fractions must
    // reproduce the reported time-in-state split on the paper CPU model.
    let path = std::env::temp_dir().join("wsnem-cli-integration-trace.ndjson");
    let out = wsnem(&[
        "trace",
        "--builtin",
        "paper-defaults",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = std::fs::read_to_string(&path).unwrap();
    let records = parse_ndjson(&text);
    assert!(records.len() > 100, "only {} records", records.len());

    // Accumulate sojourn per state index from the stream.
    let mut sojourn = [0.0f64; 4];
    for r in &records {
        if r.get("ev").and_then(|v| v.as_str()) == Some("state_exit") {
            sojourn[num(r, "state") as usize] += num(r, "sojourn");
        }
    }
    let total: f64 = sojourn.iter().sum();
    assert!(total > 0.0);

    // The stderr summary reports `state <name> trace <frac> report <frac>`;
    // all three numbers must agree.
    let err = stderr(&out);
    for (i, name) in ["standby", "powerup", "idle", "active"].iter().enumerate() {
        let line = err
            .lines()
            .find(|l| l.contains(&format!("state {name}")))
            .unwrap_or_else(|| panic!("missing state `{name}` in stderr: {err}"));
        let nums: Vec<f64> = line
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        assert_eq!(nums.len(), 2, "{line}");
        let (traced, reported) = (nums[0], nums[1]);
        assert!(
            (traced - reported).abs() < 1e-9,
            "{name}: trace {traced} vs report {reported}"
        );
        assert!(
            (sojourn[i] / total - reported).abs() < 1e-6,
            "{name}: NDJSON fraction {} vs report {reported}",
            sojourn[i] / total
        );
    }

    // The closing record carries the stream accounting.
    let end = records.last().unwrap();
    assert_eq!(end.get("ev").and_then(|v| v.as_str()), Some("trace_end"));
    assert!(num(end, "rng_draws") > 0.0);
}

#[test]
fn trace_petri_backend_labels_transitions_and_honors_limit() {
    let out = wsnem(&[
        "trace",
        "--builtin",
        "paper-defaults",
        "--backend",
        "petri",
        "--limit",
        "50",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let records = parse_ndjson(&stdout(&out));
    // 50 trace records plus the trace_end marker.
    assert_eq!(records.len(), 51, "{}", stdout(&out));
    let firing = records
        .iter()
        .find(|r| r.get("ev").and_then(|v| v.as_str()) == Some("firing"))
        .expect("at least one firing traced");
    let label = firing.get("label").and_then(|v| v.as_str()).unwrap();
    assert!(
        ["AR", "T1", "T2", "T5", "T6", "PUT", "SR", "PDT"].contains(&label),
        "unexpected transition label `{label}`"
    );
    assert!(stderr(&out).contains("petri kernel"), "{}", stderr(&out));
}

#[test]
fn profile_prints_phase_and_solver_timing_table() {
    let out = wsnem(&["profile", "--builtin", "paper-defaults", "--quick"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for col in ["base s", "sweep s", "net s", "total s", "solver seconds"] {
        assert!(text.contains(col), "missing `{col}`: {text}");
    }
    assert!(text.contains("paper-defaults"), "{text}");
    for backend in ["Markov", "PetriNet", "Des"] {
        assert!(text.contains(backend), "missing solver `{backend}`: {text}");
    }
    assert!(text.contains("batch: 1 scenario(s)"), "{text}");
    assert!(text.contains("utilization"), "{text}");
}

#[test]
fn run_csv_carries_scenario_elapsed_and_compare_csv_carries_backend_wall_clock() {
    // Satellite fix: `wsnem compare --format csv` used to drop the
    // per-backend wall-clock totals that JSON and summary carried.
    let out = wsnem(&[
        "compare",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header = csv_fields(lines.next().unwrap());
    let col = header
        .iter()
        .position(|h| h.trim() == "backend_total_seconds")
        .unwrap_or_else(|| panic!("missing backend_total_seconds in {header:?}"));
    for line in lines {
        let v: f64 = csv_fields(line)[col]
            .parse()
            .unwrap_or_else(|e| panic!("bad wall clock in `{line}`: {e}"));
        assert!(v > 0.0, "{line}");
    }

    let out = wsnem(&[
        "run",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header = csv_fields(lines.next().unwrap());
    let col = header
        .iter()
        .position(|h| h.trim() == "scenario_elapsed_seconds")
        .unwrap_or_else(|| panic!("missing scenario_elapsed_seconds in {header:?}"));
    for line in lines {
        let v: f64 = csv_fields(line)[col]
            .parse()
            .unwrap_or_else(|e| panic!("bad elapsed in `{line}`: {e}"));
        assert!(v > 0.0, "{line}");
    }
    // Batch metrics stay off the CSV body (stderr only).
    assert!(stderr(&out).contains("batch:"), "{}", stderr(&out));
}

#[test]
fn verbosity_flags_gate_batch_metrics_on_stderr() {
    let verbose = wsnem(&["run", "--builtin", "paper-defaults", "--quick", "-v"]);
    assert!(verbose.status.success());
    assert!(stderr(&verbose).contains("batch:"), "{}", stderr(&verbose));
    // The summary format carries the batch line on stdout too.
    assert!(stdout(&verbose).contains("batch:"), "{}", stdout(&verbose));

    let quiet = wsnem(&["run", "--builtin", "paper-defaults", "--quick", "-q"]);
    assert!(quiet.status.success());
    assert!(!stderr(&quiet).contains("batch:"), "{}", stderr(&quiet));

    let json = wsnem(&[
        "run",
        "--builtin",
        "paper-defaults",
        "--quick",
        "-q",
        "--format",
        "json",
    ]);
    assert!(json.status.success());
    let v = serde_json::parse(&stdout(&json)).unwrap();
    let batch = v.get("batch").expect("json output carries batch metrics");
    assert!(num(batch, "utilization") > 0.0);
    assert!(num(batch, "scenarios_per_second") > 0.0);
    assert_eq!(v.get("reports").and_then(|r| r.as_seq()).unwrap().len(), 1);
}

/// A fresh per-test directory (removed first, so re-runs start clean).
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsnem-cli-fleet-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_writes_fleet_files_and_manifest() {
    let dir = fresh_dir("gen");
    let out = wsnem(&[
        "gen",
        dir.to_str().unwrap(),
        "--field",
        "lambda=0.25:0.75:2",
        "--field",
        "service-mean=0.0625:0.125:2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("generated 4 scenario(s)"),
        "{}",
        stderr(&out)
    );
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        [
            "fleet-1.toml",
            "fleet-2.toml",
            "fleet-3.toml",
            "fleet-4.toml",
            "manifest.json"
        ]
    );
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(
        manifest.contains("\"generator\": \"wsnem gen\""),
        "{manifest}"
    );
    // Every generated file validates stand-alone.
    let f1 = dir.join("fleet-1.toml");
    let out = wsnem(&["validate", f1.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Bad field specs fail up front with the supported list.
    let out = wsnem(&["gen", dir.to_str().unwrap(), "--field", "bogus=0:1"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown --field name `bogus`"),
        "{}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("lambda"), "{}", stderr(&out));
}

#[test]
fn fleet_cache_hits_misses_refresh_and_byte_identical_csv() {
    let dir = fresh_dir("cache");
    let out = wsnem(&[
        "gen",
        dir.to_str().unwrap(),
        "--field",
        "lambda=0.25:0.75:2",
        "--field",
        "service-mean=0.0625:0.125:2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let run_csv = |extra: &[&str]| -> (String, String) {
        let mut args = vec!["run", dir.to_str().unwrap(), "--quick", "--format", "csv"];
        args.extend_from_slice(extra);
        let out = wsnem(&args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        (stdout(&out), stderr(&out))
    };

    // Cold: everything simulates and the batch line says so.
    let (cold_csv, err) = run_csv(&[]);
    assert!(err.contains("cache: 0 hit(s), 4 miss(es)"), "{err}");
    assert!(dir.join(".wsnem-cache").is_dir(), "cache dir created");

    // Warm: everything answers from the cache, and the merged CSV is
    // byte-identical to the cold run (reports come back verbatim).
    let (warm_csv, err) = run_csv(&[]);
    assert!(err.contains("cache: 4 hit(s), 0 miss(es)"), "{err}");
    assert_eq!(cold_csv, warm_csv, "warm CSV must be byte-identical");

    // Editing one file re-simulates exactly that one.
    let f1 = dir.join("fleet-1.toml");
    let text = std::fs::read_to_string(&f1).unwrap();
    let edited = text.replace("lambda = 0.25", "lambda = 0.3");
    assert_ne!(text, edited, "the edit must hit: {text}");
    std::fs::write(&f1, edited).unwrap();
    let (_, err) = run_csv(&[]);
    assert!(err.contains("cache: 3 hit(s), 1 miss(es)"), "{err}");

    // --refresh re-simulates everything despite the warm cache.
    let (_, err) = run_csv(&["--refresh"]);
    assert!(err.contains("cache: 0 hit(s), 4 miss(es)"), "{err}");

    // --no-cache neither reads the cache nor reports cache counts.
    let (_, err) = run_csv(&["--no-cache"]);
    assert!(!err.contains("cache:"), "{err}");

    // JSON runs carry the hit/miss counts in the envelope.
    let out = wsnem(&[
        "run",
        dir.to_str().unwrap(),
        "--quick",
        "-q",
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let v = serde_json::parse(&stdout(&out)).unwrap();
    let cache = v.get("cache").expect("cache stats in JSON envelope");
    assert_eq!(num(cache, "hits"), 4.0);
    assert_eq!(num(cache, "misses"), 0.0);
}

#[test]
fn no_cache_run_does_not_create_the_cache_directory() {
    let dir = fresh_dir("nocache");
    let out = wsnem(&[
        "gen",
        dir.to_str().unwrap(),
        "--field",
        "lambda=0.25:0.75:2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let out = wsnem(&["run", dir.to_str().unwrap(), "--quick", "-q", "--no-cache"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        !dir.join(".wsnem-cache").exists(),
        "--no-cache must not create the cache directory"
    );

    // The two cache escape hatches are mutually exclusive.
    let out = wsnem(&["run", dir.to_str().unwrap(), "--no-cache", "--refresh"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn duplicate_scenarios_skip_with_warning_and_error_under_strict() {
    // The same builtin twice: one run, one warning — unless --strict.
    let out = wsnem(&[
        "run",
        "--builtin",
        "paper-defaults",
        "--builtin",
        "paper-defaults",
        "--quick",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("duplicate scenario `paper-defaults`"),
        "{}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("keeping the first"),
        "{}",
        stderr(&out)
    );
    assert!(
        stdout(&out).contains("batch: 1 scenario(s)"),
        "{}",
        stdout(&out)
    );

    let out = wsnem(&[
        "run",
        "--builtin",
        "paper-defaults",
        "--builtin",
        "paper-defaults",
        "--quick",
        "--strict",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--strict"), "{}", stderr(&out));
}

#[test]
fn run_rejects_unrecognized_scenario_file_extension() {
    // Satellite fix: a `fleet.yaml` used to be silently parsed as TOML.
    let path = temp_file("fleet.yaml", "name: not-toml\n");
    let out = wsnem(&["run", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("unrecognized scenario file extension"),
        "{err}"
    );
    assert!(err.contains(".toml"), "{err}");
    assert!(err.contains(".json"), "{err}");
}

#[test]
fn compare_merges_directory_matrices_into_one_document() {
    let dir = fresh_dir("compare");
    let out = wsnem(&[
        "gen",
        dir.to_str().unwrap(),
        "--field",
        "lambda=0.25:0.75:2",
        "--field",
        "service-mean=0.125:0.125:1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let out = wsnem(&[
        "compare",
        dir.to_str().unwrap(),
        "--quick",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let header = csv_fields(lines.next().expect("header"));
    let scenario_col = header
        .iter()
        .position(|h| h.trim() == "scenario")
        .unwrap_or_else(|| panic!("missing scenario column in {header:?}"));
    let rows: Vec<Vec<String>> = lines.map(csv_fields).collect();
    // One merged document: a single header, then 5 backend rows per
    // scenario, in sorted file order.
    assert_eq!(rows.len(), 10, "{text}");
    assert!(
        rows[..5].iter().all(|r| r[scenario_col] == "fleet-1"),
        "{text}"
    );
    assert!(
        rows[5..].iter().all(|r| r[scenario_col] == "fleet-2"),
        "{text}"
    );
    assert!(
        !text[text.find('\n').unwrap()..].contains("scenario,"),
        "header must appear exactly once: {text}"
    );
}

#[test]
fn quick_smoke_runs_every_builtin_including_multihop() {
    let out = wsnem(&["run", "--all", "--quick"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for name in [
        "tree-collection",
        "chain-3hop",
        "mesh-field",
        "lpl-period-sweep",
        "mac-heterogeneous-tree",
    ] {
        assert!(text.contains(name), "summary missing `{name}`");
    }
    assert!(
        text.contains("network[tree, Markov, radio cc2420-class]"),
        "{text}"
    );
    assert!(
        text.contains("network[tree, Markov, radio x-mac]"),
        "{text}"
    );
    assert!(text.contains("bottleneck relay `root`"), "{text}");
}

/// A v5 template scenario: 2000 nodes on a fanout-4 tree, analytic backend.
fn template_scenario_toml() -> String {
    r#"
schema_version = 5
name = "template-tree"
description = "template fast-path fixture"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Mg1"]

[cpu]
lambda = 1.0
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 1000.0
warmup = 0.0
replications = 2
master_seed = 7

[report]
energy_horizon_s = 1000.0

[network]
nodes = []

[network.topology.Tree]
fanout = 4

[network.template]
count = 2000
prefix = "n"
event_rate = 1e-4
tx_per_event = 1.0
rx_rate = 0.0
"#
    .to_owned()
}

#[test]
fn run_limit_truncates_per_node_summary_lines() {
    // tree-collection has 7 nodes: `--limit 2` must show 2 and a footer,
    // the default must show all 7 with no footer.
    let out = wsnem(&[
        "run",
        "--builtin",
        "tree-collection",
        "--quick",
        "--limit",
        "2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("… and 5 more node(s); use --limit to show more"),
        "{text}"
    );
    assert_eq!(text.matches("hop ").count(), 2, "{text}");

    let out = wsnem(&["run", "--builtin", "tree-collection", "--quick"]);
    let text = stdout(&out);
    assert!(!text.contains("more node(s)"), "{text}");
    assert_eq!(text.matches("hop ").count(), 7, "{text}");

    let out = wsnem(&["run", "--builtin", "tree-collection", "--limit", "-3"]);
    assert!(!out.status.success(), "--limit must reject negatives");
}

#[test]
fn template_scenario_reports_in_aggregate_form() {
    let path = temp_file("template-tree.toml", &template_scenario_toml());
    let path = path.to_str().unwrap();
    let out = wsnem(&["run", path]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2000 nodes (aggregate)"), "{text}");
    assert!(text.contains("worst 10 node(s) by lifetime:"), "{text}");
    assert!(
        text.contains("near-unstable nodes (rho >= 0.90): 0"),
        "{text}"
    );
    // Aggregate reports carry no per-node CSV rows — one backend row only.
    let out = wsnem(&["run", path, "--format", "csv"]);
    let csv = stdout(&out);
    assert_eq!(csv.lines().count(), 2, "header + one backend row: {csv}");
}

#[test]
fn topology_inspector_handles_templates_and_limit() {
    let path = temp_file("template-tree-topo.toml", &template_scenario_toml());
    let out = wsnem(&["topology", path.to_str().unwrap(), "--limit", "3"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("tree topology (template), 2000 node(s)"),
        "{text}"
    );
    assert!(
        text.contains("… and 1997 more node(s); use --limit to show more"),
        "{text}"
    );
    assert!(text.contains("heaviest relay: `n1`"), "{text}");
}
