//! End-to-end tests of the distributed surface of the `wsnem` binary:
//! `serve` + `worker` over loopback TCP (including a worker killed
//! mid-run), the zero-worker local fallback of `run --distributed`, the
//! `--scenario-timeout` watchdog diagnostics, and the degradation path for
//! an unopenable result cache.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

fn wsnem(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wsnem"))
        .args(args)
        .output()
        .expect("spawn wsnem")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsnem-cli-dist-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generate a small fleet into `dir` (lambda × service-mean grid).
fn gen_fleet(dir: &Path, lambda_points: u32) {
    let spec = format!("lambda=0.25:0.75:{lambda_points}");
    let out = wsnem(&[
        "gen",
        dir.to_str().unwrap(),
        "--field",
        &spec,
        "--field",
        "service-mean=0.0625:0.125:2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
}

/// A loopback address with a just-free port. The listener is dropped
/// before the coordinator binds; the window for another process to steal
/// the port is tiny and a steal fails the test loudly, not silently.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    format!("127.0.0.1:{}", listener.local_addr().unwrap().port())
}

#[test]
fn serve_with_two_workers_survives_a_mid_run_kill_and_matches_a_local_run() {
    let dir = fresh_dir("serve");
    gen_fleet(&dir, 6); // 12 scenarios: enough shards to spread and reassign
    let addr = free_addr();

    // Coordinator in a child process; workers race it to the socket and
    // reconnect with backoff, so spawn order does not matter.
    let serve = Command::new(env!("CARGO_BIN_EXE_wsnem"))
        .args([
            "serve",
            dir.to_str().unwrap(),
            "--addr",
            &addr,
            "--quick",
            "--verbose",
            "--format",
            "csv",
            "--lease-timeout",
            "2",
            "--liveness-timeout",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let faulty = Command::new(env!("CARGO_BIN_EXE_wsnem"))
        .args([
            "worker",
            &addr,
            "--name",
            "faulty",
            "--fault-plan",
            "kill-after=2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn faulty worker");
    let steady = Command::new(env!("CARGO_BIN_EXE_wsnem"))
        .args(["worker", &addr, "--name", "steady"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn steady worker");

    let serve_out = serve.wait_with_output().expect("serve exits");
    let serve_err = String::from_utf8_lossy(&serve_out.stderr).into_owned();
    assert!(serve_out.status.success(), "serve stderr: {serve_err}");
    let _ = faulty.wait_with_output();
    let steady_out = steady.wait_with_output().expect("steady worker exits");
    assert!(
        steady_out.status.success(),
        "steady stderr: {}",
        String::from_utf8_lossy(&steady_out.stderr)
    );

    // The batch line carries the distribution counters; the kill-after
    // worker's leases were reassigned, so the run saw both workers.
    assert!(
        serve_err.contains("distributed: 2 worker(s)"),
        "{serve_err}"
    );
    assert!(serve_err.contains("reassigned"), "{serve_err}");

    // The distributed run populated the fleet's result cache, so a warm
    // local run answers from it — and must agree byte-for-byte with what
    // the coordinator merged.
    let dist_csv = String::from_utf8_lossy(&serve_out.stdout).into_owned();
    let out = wsnem(&[
        "run",
        dir.to_str().unwrap(),
        "--quick",
        "--verbose",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("cache: 12 hit(s), 0 miss(es)"),
        "{}",
        stderr(&out)
    );
    assert_eq!(
        dist_csv,
        stdout(&out),
        "distributed and local merged CSV must be byte-identical"
    );
}

#[test]
fn distributed_run_with_no_workers_falls_back_to_a_local_run() {
    let dir = fresh_dir("fallback");
    gen_fleet(&dir, 2);
    let out = wsnem(&[
        "run",
        dir.to_str().unwrap(),
        "--distributed",
        "127.0.0.1:0",
        "--grace",
        "0.3",
        "--quick",
        "--verbose",
        "--format",
        "csv",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("serving 4 scenario(s) on 127.0.0.1:"), "{err}");
    assert!(
        err.contains(
            "distributed: 0 worker(s), 0 remote + 4 local shard(s), 0 reassigned, local fallback"
        ),
        "{err}"
    );
}

fn slow_des_scenario() -> PathBuf {
    let dir = std::env::temp_dir().join("wsnem-cli-dist-timeout");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("slow-des.toml");
    std::fs::write(
        &path,
        r#"
schema_version = 5
name = "slow-des"
description = "watchdog fixture: a DES horizon no test budget survives"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Des"]

[cpu]
lambda = 0.3
mu = 10.0
power_down_threshold = 0.5
power_up_delay = 0.001
horizon = 5.0e7
warmup = 0.0
replications = 1
master_seed = 7

[report]
energy_horizon_s = 1000.0
"#,
    )
    .unwrap();
    path
}

#[test]
fn scenario_timeout_emits_w006_and_fails_only_under_strict() {
    let path = slow_des_scenario();
    // Without --strict the watchdog is a coded warning and the run exits 0.
    let out = wsnem(&[
        "run",
        path.to_str().unwrap(),
        "--scenario-timeout",
        "0.2",
        "--no-check",
    ]);
    let err = stderr(&out);
    assert!(out.status.success(), "stderr: {err}");
    assert!(err.contains("warning[W006]"), "{err}");
    assert!(err.contains("scenario `slow-des`"), "{err}");
    assert!(err.contains("0.2 s wall-clock watchdog"), "{err}");

    // --strict turns surviving timeouts into a non-zero exit.
    let out = wsnem(&[
        "run",
        path.to_str().unwrap(),
        "--scenario-timeout",
        "0.2",
        "--no-check",
        "--strict",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("hit the --scenario-timeout watchdog (--strict)"),
        "{}",
        stderr(&out)
    );

    // `compare` shares the watchdog: the matrix is skipped with the same
    // diagnostic, and --strict fails the invocation.
    let out = wsnem(&[
        "compare",
        path.to_str().unwrap(),
        "--scenario-timeout",
        "0.2",
        "--no-check",
    ]);
    assert!(!out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("nothing to compare"),
        "{}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("warning[W006]"), "{}", stderr(&out));

    // Bad values are rejected up front.
    let out = wsnem(&["run", path.to_str().unwrap(), "--scenario-timeout", "-1"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--scenario-timeout expects a positive number of seconds"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unopenable_result_cache_degrades_to_a_warning_and_the_run_proceeds() {
    let dir = fresh_dir("badcache");
    gen_fleet(&dir, 2);
    // Park a regular file where the cache directory goes: open_under fails
    // for as long as the file is there, on any platform, root or not.
    std::fs::write(dir.join(".wsnem-cache"), "not a directory").unwrap();
    let out = wsnem(&["run", dir.to_str().unwrap(), "--quick", "--format", "csv"]);
    let err = stderr(&out);
    assert!(out.status.success(), "stderr: {err}");
    assert!(err.contains("cannot open the result cache under"), "{err}");
    assert!(err.contains("running uncached"), "{err}");
    // No cache counters in the batch line: the fleet ran genuinely
    // uncached. (The warning itself mentions the cache path, so match the
    // counter shape, not the word.)
    assert!(!err.contains("hit(s)"), "{err}");
}
