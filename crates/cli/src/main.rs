//! `wsnem` — the batch scenario runner.
//!
//! ```text
//! wsnem list                              # show the built-in scenario library
//! wsnem run --all                         # run every built-in scenario
//! wsnem run my.toml other.json            # run user-authored scenario files
//! wsnem run --builtin paper-defaults      # run one built-in by name
//! wsnem run --all --format json -o out.json
//! wsnem run --all --format csv            # flat per-backend rows
//! wsnem compare --builtin paper-defaults  # Table 4/5 matrix: every backend
//! wsnem validate my.toml                  # parse + validate without running
//! wsnem export paper-defaults --format toml   # print a built-in as a file
//! wsnem topology --builtin tree-collection    # inspect multi-hop routing
//! wsnem radio --preset cc2420-class           # inspect a duty-cycle MAC
//! wsnem radio --builtin mac-heterogeneous-tree    # ...or a scenario's radios
//! ```
//!
//! Scenarios in one invocation run in parallel across OS threads
//! (`--threads N` pins the count). Argument parsing is hand-rolled — the
//! workspace builds offline, without clap.

use std::io::IsTerminal;
use std::process::ExitCode;
use std::time::Instant;

use wsnem_scenario::{
    builtin, files, run_batch_with_metrics, BatchMetrics, FileFormat, Scenario, ScenarioReport,
};

/// Write to stdout, treating a closed pipe (`wsnem list | head`) as a normal
/// end of output rather than a panic.
fn out(text: &str) {
    use std::io::Write;
    let mut stdout = std::io::stdout();
    if stdout
        .write_all(text.as_bytes())
        .and_then(|()| stdout.flush())
        .is_err()
    {
        std::process::exit(0);
    }
}

macro_rules! outln {
    () => { out("\n") };
    ($($arg:tt)*) => { out(&format!("{}\n", format_args!($($arg)*))) };
}

const USAGE: &str = "wsnem — energy-model scenario runner

USAGE:
    wsnem <COMMAND> [OPTIONS]

COMMANDS:
    list                       List built-in scenarios
    run [FILES..] [OPTIONS]    Run scenario files and/or built-ins
    compare [FILE] [OPTIONS]   Run EVERY registered backend over a scenario's
                               base point and sweep, and emit the paper's
                               Table 4/5 cross-backend comparison matrix
                               (per-state deltas in percentage points plus
                               wall-clock cost per backend)
    trace [FILE] [OPTIONS]     Run one scenario's CPU model with a trace
                               observer attached and emit an NDJSON event
                               stream (firings, state changes, queue depths);
                               attaching the tracer never perturbs the run
    profile [FILES..] [OPTIONS]
                               Run scenarios and print a wall-clock profile:
                               per-scenario phase timings (base / sweep /
                               network), per-backend solver cost and batch
                               worker utilization
    validate <FILES..>         Parse and validate scenario files
    export <NAME> [OPTIONS]    Print a built-in scenario as a file
    topology [FILE] [--builtin <NAME>]
                               Inspect a scenario's multi-hop routing:
                               per-node next hop, hop depth, subtree size,
                               forwarding load and radio MAC (no model
                               evaluation)
    radio [FILE] [--builtin <NAME> | --preset <NAME>]
                               Inspect duty-cycle radio/MAC specs: lowered
                               timing numbers, derived duty cycle, the
                               per-state power split and a
                               lifetime-vs-traffic table
    help                       Show this help

RUN OPTIONS:
    --all                 Run every built-in scenario
    --builtin <NAME>      Run one built-in (repeatable)
    --format <FMT>        Output format: summary (default), json, csv
    --out, -o <FILE>      Write the report there instead of stdout
    --threads <N>         Parallelism across scenarios (default: all cores)
    --quick               Shrink replications/horizons for a fast smoke run
    --verbose, -v         Show the live progress line even without a TTY and
                          print batch metrics (workers, utilization) at the end
    --quiet, -q           Suppress the progress line and informational stderr

TRACE OPTIONS:
    --builtin <NAME>      Trace a built-in scenario's CPU parameters
    --backend <B>         Kernel to trace: des (default) or petri
    --out, -o <FILE>      Write the NDJSON stream there instead of stdout
    --limit <N>           Stop recording after N trace records
    --sample <N>          Record every N-th admissible event only
    --seed <N>            RNG seed (default: the scenario's master seed)

PROFILE OPTIONS:
    --all                 Profile every built-in scenario
    --builtin <NAME>      Profile one built-in (repeatable)
    --threads <N>         Parallelism across scenarios (default: all cores)
    --quick               Shrink replications/horizons for a fast smoke run

COMPARE OPTIONS:
    --builtin <NAME>      Compare a built-in scenario
    --format <FMT>        Output format: summary (default), json, csv
    --out, -o <FILE>      Write the matrix there instead of stdout
    --threads <N>         Replication worker threads (default: all cores)
    --quick               Shrink replications/horizons for a fast smoke run
    --max-delta-pp <PP>   Exit non-zero if any backend's mean |Δ| vs the
                          reference exceeds PP percentage points

EXPORT OPTIONS:
    --format <FMT>        File format: toml (default), json
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        None => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
        Some((c, rest)) => (c.as_str(), rest),
    };
    let result = match command {
        "list" => cmd_list(),
        "run" => cmd_run(rest),
        "trace" => cmd_trace(rest),
        "profile" => cmd_profile(rest),
        "compare" => cmd_compare(rest),
        "validate" => cmd_validate(rest),
        "export" => cmd_export(rest),
        "topology" => cmd_topology(rest),
        "radio" => cmd_radio(rest),
        "help" | "--help" | "-h" => {
            out(USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), String> {
    let scenarios = builtin::all();
    outln!("{} built-in scenarios:\n", scenarios.len());
    for s in &scenarios {
        let features: Vec<&str> = [
            s.sweep.as_ref().map(|_| "sweep"),
            s.network.as_ref().map(|_| "network"),
            s.network
                .as_ref()
                .and_then(|n| n.topology.as_ref())
                .map(|t| t.label()),
            s.workload
                .as_ref()
                .filter(|w| !w.is_poisson())
                .map(|_| "non-poisson workload"),
            s.service
                .as_ref()
                .filter(|d| !d.is_exponential())
                .map(|_| "non-exponential service"),
        ]
        .into_iter()
        .flatten()
        .collect();
        let backends: Vec<String> = s.backends.iter().map(|b| b.to_string()).collect();
        outln!("  {}", s.name);
        outln!("      backends: {}", backends.join(", "));
        if !features.is_empty() {
            outln!("      features: {}", features.join(", "));
        }
        for line in wrap(&s.description, 72) {
            outln!("      {line}");
        }
        outln!();
    }
    outln!("Run them with `wsnem run --all` or `wsnem run --builtin <name>`;");
    outln!("export one as a starting point with `wsnem export <name>`.");
    Ok(())
}

#[derive(Default)]
struct RunOptions {
    files: Vec<String>,
    builtins: Vec<String>,
    all: bool,
    format: String,
    out: Option<String>,
    threads: Option<usize>,
    quick: bool,
    verbose: bool,
    quiet: bool,
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, String> {
    let mut o = RunOptions {
        format: "summary".into(),
        ..RunOptions::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => o.all = true,
            "--quick" => o.quick = true,
            "--verbose" | "-v" => o.verbose = true,
            "--quiet" | "-q" => o.quiet = true,
            "--builtin" => o.builtins.push(required(&mut it, "--builtin <NAME>")?),
            "--format" => o.format = required(&mut it, "--format <FMT>")?,
            "--out" | "-o" => o.out = Some(required(&mut it, "--out <FILE>")?),
            "--threads" => {
                let v = required(&mut it, "--threads <N>")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                o.threads = Some(n);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            file => o.files.push(file.to_owned()),
        }
    }
    if !matches!(o.format.as_str(), "summary" | "json" | "csv") {
        return Err(format!(
            "unknown format `{}` (expected summary, json or csv)",
            o.format
        ));
    }
    Ok(o)
}

fn required(it: &mut std::slice::Iter<'_, String>, what: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("missing value for {what}"))
}

/// Resolve the one scenario a subcommand operates on: a file path or a
/// `--builtin` name, mutually exclusive. `command` names the caller in the
/// nothing-given error (shared by `compare`, `topology` and `radio`).
fn resolve_scenario(
    file: Option<String>,
    builtin_name: Option<String>,
    command: &str,
) -> Result<Scenario, String> {
    match (file, builtin_name) {
        (Some(_), Some(_)) => {
            Err("pass either a scenario file or --builtin <NAME>, not both".into())
        }
        (None, None) => Err(format!(
            "{command} expects a scenario file or --builtin <NAME>"
        )),
        (Some(f), None) => files::load(&f).map_err(|e| e.to_string()),
        (None, Some(n)) => builtin::find(&n).map_err(|e| e.to_string()),
    }
}

/// Shrink a scenario for smoke runs (`--quick`): fewer replications,
/// shorter horizons, thinner sweeps.
fn shrink(mut s: Scenario) -> Scenario {
    s.cpu = s
        .cpu
        .with_replications(2)
        .with_horizon(300.0)
        .with_warmup(s.cpu.warmup.min(30.0));
    if let Some(sweep) = &mut s.sweep {
        if sweep.values.len() > 3 {
            let n = sweep.values.len();
            sweep.values = vec![sweep.values[0], sweep.values[n / 2], sweep.values[n - 1]];
        }
    }
    s
}

fn gather_scenarios(o: &RunOptions, command: &str) -> Result<Vec<Scenario>, String> {
    let mut scenarios: Vec<Scenario> = Vec::new();
    if o.all {
        scenarios.extend(builtin::all());
    }
    for name in &o.builtins {
        scenarios.push(builtin::find(name).map_err(|e| e.to_string())?);
    }
    for file in &o.files {
        scenarios.push(files::load(file).map_err(|e| e.to_string())?);
    }
    if scenarios.is_empty() {
        return Err(format!(
            "nothing to {command}: pass scenario files, --builtin <name> or --all"
        ));
    }
    Ok(if o.quick {
        scenarios.into_iter().map(shrink).collect()
    } else {
        scenarios
    })
}

/// One-line batch metrics footer shared by the summary format, `-v` and
/// `profile`.
fn batch_line(m: &BatchMetrics) -> String {
    format!(
        "batch: {} scenario(s) in {:.3} s — {} worker(s), utilization {:.0}%, {:.2} scenarios/s",
        m.scenarios,
        m.wall_seconds,
        m.workers,
        100.0 * m.utilization,
        m.scenarios_per_second
    )
}

/// Run a gathered batch with the live progress line (TTY or `-v`, unless
/// `-q`): `[done/total] name (ETA ...)`, rewritten in place on stderr.
fn run_with_progress(
    scenarios: &[Scenario],
    o: &RunOptions,
) -> (
    Vec<Result<ScenarioReport, wsnem_scenario::ScenarioError>>,
    BatchMetrics,
) {
    let show_progress = !o.quiet && (o.verbose || std::io::stderr().is_terminal());
    let started = Instant::now();
    let progress = move |done: usize, total: usize, name: &str| {
        let elapsed = started.elapsed().as_secs_f64();
        let eta = if done > 0 {
            elapsed / done as f64 * (total - done) as f64
        } else {
            0.0
        };
        eprint!("\r[{done}/{total}] {name:<32} (elapsed {elapsed:.1} s, ETA {eta:.1} s)  ");
        let _ = std::io::Write::flush(&mut std::io::stderr());
    };
    let (results, metrics) = run_batch_with_metrics(
        scenarios,
        o.threads,
        show_progress.then_some(&progress as &(dyn Fn(usize, usize, &str) + Sync)),
    );
    if show_progress {
        // Clear the progress line so reports start on a clean row.
        eprint!("\r{:<80}\r", "");
        let _ = std::io::Write::flush(&mut std::io::stderr());
    }
    if o.verbose && !o.quiet {
        eprintln!("{}", batch_line(&metrics));
    }
    (results, metrics)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let o = parse_run_options(args)?;
    let scenarios = gather_scenarios(&o, "run")?;
    let (results, metrics) = run_with_progress(&scenarios, &o);
    let mut reports = Vec::new();
    let mut failures = Vec::new();
    for (s, r) in scenarios.iter().zip(results) {
        match r {
            Ok(report) => reports.push(report),
            Err(e) => failures.push(format!("{}: {e}", s.name)),
        }
    }

    let rendered = render(&reports, &metrics, &o.format)?;
    match &o.out {
        None => out(&rendered),
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            if !o.quiet {
                eprintln!(
                    "wrote {} report(s) to {path} ({} format)",
                    reports.len(),
                    o.format
                );
            }
        }
    }
    // The CSV body must stay aligned with its header, so batch metrics go
    // to stderr there (JSON and summary carry them inline).
    if o.format == "csv" && !o.quiet {
        eprintln!("{}", batch_line(&metrics));
    }

    if !failures.is_empty() {
        return Err(format!(
            "{} of {} scenario(s) failed:\n  {}",
            failures.len(),
            scenarios.len(),
            failures.join("\n  ")
        ));
    }
    Ok(())
}

/// JSON envelope for `wsnem run --format json`: the report list plus the
/// batch metrics.
#[derive(serde::Serialize)]
struct RunOutput {
    batch: BatchMetrics,
    reports: Vec<ScenarioReport>,
}

fn render(
    reports: &[ScenarioReport],
    metrics: &BatchMetrics,
    format: &str,
) -> Result<String, String> {
    match format {
        "json" => serde_json::to_string_pretty(&RunOutput {
            batch: *metrics,
            reports: reports.to_vec(),
        })
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| e.to_string()),
        "csv" => {
            let mut out = String::from(ScenarioReport::CSV_HEADER);
            out.push('\n');
            for r in reports {
                for row in r.csv_rows() {
                    out.push_str(&row);
                    out.push('\n');
                }
            }
            Ok(out)
        }
        _ => {
            let mut out = String::new();
            for r in reports {
                out.push_str(&r.summary());
                out.push('\n');
            }
            out.push_str(&batch_line(metrics));
            out.push('\n');
            Ok(out)
        }
    }
}

/// The canonical CPU state labels, in [`wsnem_energy::CpuState::index`]
/// order — also the order of `StateFractions::as_array`.
const STATE_LABELS: [&str; 4] = ["standby", "powerup", "idle", "active"];

fn cmd_trace(args: &[String]) -> Result<(), String> {
    use wsnem_obs::{StateTimeline, Tee, TraceWriter};

    let mut file: Option<String> = None;
    let mut builtin_name: Option<String> = None;
    let mut backend = "des".to_owned();
    let mut out_path: Option<String> = None;
    let mut limit: Option<usize> = None;
    let mut sample: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => builtin_name = Some(required(&mut it, "--builtin <NAME>")?),
            "--backend" => backend = required(&mut it, "--backend <B>")?,
            "--out" | "-o" => out_path = Some(required(&mut it, "--out <FILE>")?),
            "--limit" => {
                let v = required(&mut it, "--limit <N>")?;
                limit = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| format!("--limit expects a positive integer, got `{v}`"))?,
                );
            }
            "--sample" => {
                let v = required(&mut it, "--sample <N>")?;
                sample =
                    Some(v.parse().ok().filter(|&n: &usize| n >= 1).ok_or_else(|| {
                        format!("--sample expects a positive integer, got `{v}`")
                    })?);
            }
            "--seed" => {
                let v = required(&mut it, "--seed <N>")?;
                seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed expects an integer, got `{v}`"))?,
                );
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            f if file.is_none() => file = Some(f.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let scenario = resolve_scenario(file, builtin_name, "trace")?;
    let cpu = scenario.cpu;
    let seed = seed.unwrap_or(cpu.master_seed);
    // The trace covers one replication from time zero with no warm-up
    // truncation, so the per-state sojourn fractions accumulated from the
    // stream reproduce the reported time-in-state split exactly.
    let mut tracer = TraceWriter::new(Vec::new());
    if let Some(n) = limit {
        tracer = tracer.with_limit(n);
    }
    if let Some(n) = sample {
        tracer = tracer.with_sampling(n);
    }
    let mut rng = wsnem_stats::rng::Xoshiro256PlusPlus::new(seed);

    let (bytes, summary) = match backend.as_str() {
        "des" => {
            tracer = tracer.with_state_labels(STATE_LABELS.map(str::to_owned).to_vec());
            let params = wsnem_des::CpuSimParams {
                service: wsnem_stats::dist::Dist::Exponential { rate: cpu.mu },
                power_down_threshold: cpu.power_down_threshold,
                power_up_delay: cpu.power_up_delay,
                horizon: cpu.horizon,
                warmup: 0.0,
                max_queue: None,
            };
            let sim = wsnem_des::CpuDes::new(params, wsnem_des::Workload::open_poisson(cpu.lambda))
                .map_err(|e| e.to_string())?;
            let mut obs = Tee::new(tracer, StateTimeline::new());
            let report = sim.run_observed(&mut rng, &mut obs);
            let Tee {
                a: tracer,
                b: timeline,
            } = obs;
            let mut summary = format!(
                "traced `{}` on the des kernel: horizon {} s, seed {seed}, {} record(s)\n",
                scenario.name,
                cpu.horizon,
                tracer.records_written()
            );
            let reported = report.fractions.as_array();
            for (i, label) in STATE_LABELS.iter().enumerate() {
                summary.push_str(&format!(
                    "  state {label:<8} trace {:.9}  report {:.9}\n",
                    timeline.fraction(i as u8),
                    reported[i]
                ));
            }
            (tracer.finish().map_err(|e| e.to_string())?, summary)
        }
        "petri" => {
            let (net, handles) = wsnem_core::build_cpu_edspn(
                cpu.lambda,
                cpu.mu,
                cpu.power_down_threshold,
                cpu.power_up_delay,
            )
            .map_err(|e| e.to_string())?;
            let labels: Vec<String> = net
                .transitions()
                .map(|t| net.transition_name(t).to_owned())
                .collect();
            tracer = tracer.with_transition_labels(labels);
            let rewards = wsnem_core::state_rewards(&handles);
            let cfg = wsnem_petri::SimConfig {
                horizon: cpu.horizon,
                warmup: 0.0,
                ..wsnem_petri::SimConfig::default()
            };
            let out = wsnem_petri::simulate_observed(&net, &cfg, &rewards, &mut rng, &mut tracer)
                .map_err(|e| e.to_string())?;
            let mut summary = format!(
                "traced `{}` on the petri kernel: horizon {} s, seed {seed}, {} record(s)\n",
                scenario.name,
                cpu.horizon,
                tracer.records_written()
            );
            for (i, label) in STATE_LABELS.iter().enumerate() {
                summary.push_str(&format!(
                    "  state {label:<8} report {:.9}\n",
                    out.reward_means[i]
                ));
            }
            (tracer.finish().map_err(|e| e.to_string())?, summary)
        }
        other => return Err(format!("unknown backend `{other}` (expected des or petri)")),
    };

    match &out_path {
        None => out(std::str::from_utf8(&bytes).map_err(|e| e.to_string())?),
        Some(path) => std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?,
    }
    eprint!("{summary}");
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut o = parse_run_options(args)?;
    if o.format != "summary" {
        return Err("profile has no --format; its output is the timing table".into());
    }
    if o.out.is_some() {
        return Err("profile prints to stdout; redirect it instead of --out".into());
    }
    // The profile table is the output; keep stderr quiet unless asked.
    o.quiet = !o.verbose;
    let scenarios = gather_scenarios(&o, "profile")?;
    let (results, metrics) = run_with_progress(&scenarios, &o);

    outln!(
        "  {:<28} {:>9} {:>9} {:>9} {:>9}  solver seconds (base point)",
        "scenario",
        "base s",
        "sweep s",
        "net s",
        "total s"
    );
    let mut failures = Vec::new();
    for (s, r) in scenarios.iter().zip(&results) {
        match r {
            Err(e) => failures.push(format!("{}: {e}", s.name)),
            Ok(report) => {
                let p = report.phase_seconds;
                let solvers: Vec<String> = report
                    .backends
                    .iter()
                    .map(|b| format!("{} {:.4}", b.backend, b.eval_seconds))
                    .collect();
                outln!(
                    "  {:<28} {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {}",
                    report.scenario,
                    p.base_seconds,
                    p.sweep_seconds,
                    p.network_seconds,
                    report.elapsed_seconds,
                    solvers.join(", ")
                );
            }
        }
    }
    outln!("{}", batch_line(&metrics));
    if !failures.is_empty() {
        return Err(format!(
            "{} of {} scenario(s) failed:\n  {}",
            failures.len(),
            scenarios.len(),
            failures.join("\n  ")
        ));
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let mut file: Option<String> = None;
    let mut builtin_name: Option<String> = None;
    let mut format = "summary".to_owned();
    let mut out_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut quick = false;
    let mut max_delta_pp: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => builtin_name = Some(required(&mut it, "--builtin <NAME>")?),
            "--format" => format = required(&mut it, "--format <FMT>")?,
            "--out" | "-o" => out_path = Some(required(&mut it, "--out <FILE>")?),
            "--quick" => quick = true,
            "--threads" => {
                let v = required(&mut it, "--threads <N>")?;
                threads =
                    Some(v.parse().ok().filter(|&n: &usize| n >= 1).ok_or_else(|| {
                        format!("--threads expects a positive integer, got `{v}`")
                    })?);
            }
            "--max-delta-pp" => {
                let v = required(&mut it, "--max-delta-pp <PP>")?;
                max_delta_pp =
                    Some(v.parse().ok().filter(|x: &f64| *x > 0.0).ok_or_else(|| {
                        format!("--max-delta-pp expects a positive number, got `{v}`")
                    })?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            f if file.is_none() => file = Some(f.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let mut scenario = resolve_scenario(file, builtin_name, "compare")?;
    if quick {
        // Slightly larger smoke budget than `run --quick`: the matrix gates
        // on 2 pp agreement, which 2 replications of 300 s cannot promise.
        scenario.cpu = scenario
            .cpu
            .with_replications(4)
            .with_horizon(1500.0)
            .with_warmup(scenario.cpu.warmup.clamp(50.0, 100.0));
        if let Some(sweep) = &mut scenario.sweep {
            sweep.values.truncate(2);
        }
    }

    let report = wsnem_scenario::compare_scenario_with(
        &scenario,
        wsnem_scenario::global_registry(),
        threads,
    )
    .map_err(|e| e.to_string())?;

    let rendered = match format.as_str() {
        "summary" => report.summary(),
        "json" => {
            let mut s = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
            s.push('\n');
            s
        }
        "csv" => {
            let mut s = String::from(wsnem_scenario::CompareReport::CSV_HEADER);
            s.push('\n');
            for row in report.csv_rows() {
                s.push_str(&row);
                s.push('\n');
            }
            s
        }
        other => {
            return Err(format!(
                "unknown format `{other}` (expected summary, json or csv)"
            ))
        }
    };
    match &out_path {
        None => out(&rendered),
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote comparison matrix to {path} ({format} format)");
        }
    }

    if let Some(tol) = max_delta_pp {
        if report.max_mean_abs_delta_pp > tol {
            return Err(format!(
                "comparison matrix exceeds tolerance: max mean |Δ| = {:.3} pp > {tol} pp",
                report.max_mean_abs_delta_pp
            ));
        }
        eprintln!(
            "max mean |Δ| = {:.3} pp within tolerance {tol} pp",
            report.max_mean_abs_delta_pp
        );
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("validate expects at least one scenario file".into());
    }
    let mut bad = 0usize;
    for file in args {
        match files::load(file) {
            Ok(s) => outln!("{file}: ok (scenario `{}`)", s.name),
            Err(e) => {
                bad += 1;
                outln!("{file}: INVALID — {e}");
            }
        }
    }
    if bad > 0 {
        Err(format!("{bad} of {} file(s) invalid", args.len()))
    } else {
        Ok(())
    }
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let mut name: Option<String> = None;
    let mut format = "toml".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => format = required(&mut it, "--format <FMT>")?,
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            n if name.is_none() => name = Some(n.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let name = name.ok_or("export expects a built-in scenario name")?;
    let scenario = builtin::find(&name).map_err(|e| e.to_string())?;
    let format = match format.as_str() {
        "toml" => FileFormat::Toml,
        "json" => FileFormat::Json,
        other => return Err(format!("unknown format `{other}` (expected toml or json)")),
    };
    let text = files::to_string(&scenario, format).map_err(|e| e.to_string())?;
    out(&text);
    if !text.ends_with('\n') {
        outln!();
    }
    Ok(())
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let mut file: Option<String> = None;
    let mut builtin_name: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => builtin_name = Some(required(&mut it, "--builtin <NAME>")?),
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            f if file.is_none() => file = Some(f.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let scenario = resolve_scenario(file, builtin_name, "topology")?;
    let spec = scenario
        .network
        .as_ref()
        .ok_or_else(|| format!("scenario `{}` declares no network", scenario.name))?;
    let profile = scenario.profile.build().map_err(|e| e.to_string())?;
    let battery = scenario.battery.build().map_err(|e| e.to_string())?;
    let net = spec
        .build_network(scenario.cpu, &profile, &battery)
        .map_err(|e| e.to_string())?;
    net.validate()
        .map_err(|e| format!("scenario `{}`: invalid topology: {e}", scenario.name))?;
    let routing = net.routing().map_err(|e| e.to_string())?;
    let (depths, forwarded, sizes) = (&routing.depths, &routing.forwarded, &routing.subtree_sizes);

    let shape = spec.topology.as_ref().map(|t| t.label()).unwrap_or("star");
    outln!(
        "scenario `{}`: {shape} topology, {} node(s), max depth {}, sink inflow {:.3} pkt/s\n",
        scenario.name,
        net.nodes.len(),
        depths.iter().max().copied().unwrap_or(0),
        net.sink_arrival_pkts_s()
    );
    outln!(
        "  {:<16} {:<16} {:>5} {:>8} {:>12} {:>12} {:>12}  {:<20}",
        "node",
        "next hop",
        "depth",
        "subtree",
        "own tx/s",
        "fwd rx/s",
        "cpu load/s",
        "radio (duty)"
    );
    for (i, node) in net.nodes.iter().enumerate() {
        let next = match net.next_hop[i] {
            wsnem_scenario::NextHop::Sink => "(sink)".to_owned(),
            wsnem_scenario::NextHop::Node(j) => net.nodes[j].name.clone(),
        };
        let radio = format!(
            "{} ({:.2}%)",
            spec.radio_spec_for(i).label(),
            100.0 * node.radio.duty_cycle()
        );
        outln!(
            "  {:<16} {:<16} {:>5} {:>8} {:>12.3} {:>12.3} {:>12.3}  {:<20}",
            node.name,
            next,
            depths[i],
            sizes[i],
            node.own_tx_rate(),
            forwarded[i],
            node.event_rate + forwarded[i],
            radio
        );
    }
    if let Some((i, _)) = forwarded
        .iter()
        .enumerate()
        .filter(|(_, f)| **f > 0.0)
        .max_by(|a, b| a.1.total_cmp(b.1))
    {
        // This inspector runs no model, so it can only rank relays by
        // load; the *lifetime* bottleneck relay (MAC-sensitive with
        // per-node radio overrides) comes from `wsnem run`.
        outln!(
            "\n  heaviest relay: `{}` forwards {:.3} pkt/s for {} node(s) \
             (lifetime bottleneck: see `wsnem run`)",
            net.nodes[i].name,
            forwarded[i],
            sizes[i] - 1
        );
    }
    Ok(())
}

fn cmd_radio(args: &[String]) -> Result<(), String> {
    use wsnem_scenario::{Battery, RadioSpec};

    let mut file: Option<String> = None;
    let mut builtin_name: Option<String> = None;
    let mut preset: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => builtin_name = Some(required(&mut it, "--builtin <NAME>")?),
            "--preset" => preset = Some(required(&mut it, "--preset <NAME>")?),
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            f if file.is_none() => file = Some(f.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    // Collect (role, spec) pairs plus the battery that sizes the lifetime
    // column: a bare preset inspects on two AA cells; a scenario inspects
    // its own network's specs on its own battery.
    let (specs, battery): (Vec<(String, RadioSpec)>, Battery) = match (preset, file, builtin_name) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
            return Err("pass either --preset <NAME> or a scenario, not both".into())
        }
        (Some(name), None, None) => (
            vec![("preset".to_owned(), RadioSpec::Preset(name))],
            Battery::two_aa(),
        ),
        (None, None, None) => {
            return Err(
                "radio expects a scenario file, --builtin <NAME> or --preset <NAME> \
                 (e.g. `wsnem radio --preset cc2420-class`)"
                    .into(),
            )
        }
        (None, f, b) => {
            let scenario = resolve_scenario(f, b, "radio")?;
            let battery = scenario.battery.build().map_err(|e| e.to_string())?;
            let mut specs: Vec<(String, RadioSpec)> = Vec::new();
            match &scenario.network {
                None => specs.push((
                    "default (scenario declares no network)".to_owned(),
                    RadioSpec::default(),
                )),
                Some(net) => {
                    specs.push((
                        if net.radio.is_some() {
                            "network default".to_owned()
                        } else {
                            "network default (implicit)".to_owned()
                        },
                        net.radio.clone().unwrap_or_default(),
                    ));
                    for n in &net.nodes {
                        if let Some(r) = &n.radio {
                            // One block per distinct override; name every
                            // node that runs it.
                            match specs.iter_mut().find(|(_, s)| s == r) {
                                Some((role, _)) => role.push_str(&format!(", node `{}`", n.name)),
                                None => {
                                    specs.push((format!("node `{}` override", n.name), r.clone()))
                                }
                            }
                        }
                    }
                }
            }
            outln!(
                "scenario `{}`: {} distinct radio spec(s)\n",
                scenario.name,
                specs.len()
            );
            (specs, battery)
        }
    };

    for (i, (role, spec)) in specs.iter().enumerate() {
        if i > 0 {
            outln!();
        }
        let model = spec.lower().map_err(|e| e.to_string())?;
        outln!("radio `{}` — {role}", spec.label());
        outln!(
            "  power:  sleep {:.3} mW   listen/rx {:.3} mW   tx {:.3} mW",
            model.sleep_mw,
            model.listen_mw,
            model.tx_mw
        );
        outln!(
            "  timing: wake-up period {:.4} s, listen window {:.4} s  ->  duty cycle {:.2}%",
            model.period_s,
            model.listen_s,
            100.0 * model.duty_cycle()
        );
        outln!(
            "  airtime/packet: tx {:.4} s, rx {:.4} s (MAC overhead included)",
            model.tx_airtime_s,
            model.rx_airtime_s
        );
        outln!();
        outln!(
            "  {:>14}  {:>7} {:>7} {:>7} {:>7}  {:>10}  {:>16}",
            "pkt/s (tx=rx)",
            "tx%",
            "rx%",
            "listen%",
            "sleep%",
            "mean mW",
            "lifetime (days)"
        );
        for rate in [0.0, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0] {
            let split = model.time_split(rate, rate);
            let power = model.mean_power_mw(rate, rate);
            outln!(
                "  {:>14} {:>7.2} {:>7.2} {:>8.2} {:>7.2}  {:>10.3}  {:>16.1}",
                rate,
                100.0 * split.tx,
                100.0 * split.rx,
                100.0 * split.listen,
                100.0 * split.sleep,
                power,
                battery.lifetime_days(power)
            );
        }
        outln!(
            "  (lifetime = radio draw alone on a {:.0} mAh / {:.1} V battery; CPU not \
             included)",
            battery.capacity_mah,
            battery.voltage_v
        );
    }
    Ok(())
}

fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        if !line.is_empty() && line.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut line));
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(word);
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}
