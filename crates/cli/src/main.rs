//! `wsnem` — the batch scenario runner.
//!
//! ```text
//! wsnem list                              # show the built-in scenario library
//! wsnem run --all                         # run every built-in scenario
//! wsnem run my.toml other.json            # run user-authored scenario files
//! wsnem run --builtin paper-defaults      # run one built-in by name
//! wsnem run --all --format json -o out.json
//! wsnem run --all --format csv            # flat per-backend rows
//! wsnem gen sweep/ --field lambda=0.2:1.0:5   # generate a scenario fleet
//! wsnem run sweep/                        # run a whole directory (cached)
//! wsnem compare --builtin paper-defaults  # Table 4/5 matrix: every backend
//! wsnem check my.toml sweep/              # static verification + lints
//! wsnem check --all --deny warnings       # prove every built-in sound
//! wsnem validate my.toml                  # schema checks only, no net passes
//! wsnem export paper-defaults --format toml   # print a built-in as a file
//! wsnem topology --builtin tree-collection    # inspect multi-hop routing
//! wsnem radio --preset cc2420-class           # inspect a duty-cycle MAC
//! wsnem radio --builtin mac-heterogeneous-tree    # ...or a scenario's radios
//! ```
//!
//! Scenarios in one invocation run in parallel across OS threads
//! (`--threads N` pins the count). Directory runs answer unchanged
//! scenarios from a content-hash result cache (`.wsnem-cache/` inside the
//! directory) — see `--no-cache` / `--refresh`. Argument parsing is
//! hand-rolled — the workspace builds offline, without clap.

// The binary's `main` converts every error into an exit code; the few
// unwraps left guard infallible conversions, where a panic is acceptable.
#![allow(clippy::disallowed_methods)]

use std::io::IsTerminal;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use wsnem_fleetd::{Coordinator, DistStats, FaultPlan, ServeOptions, WorkerOptions};
use wsnem_scenario::{
    builtin, files, fleet, gen, BatchMetrics, CacheMode, CacheStats, FieldSpec, FileFormat,
    GenField, GenMethod, GenSpec, ResultCache, Scenario, ScenarioReport,
    DEFAULT_SUMMARY_NODE_LIMIT,
};

/// Write to stdout, treating a closed pipe (`wsnem list | head`) as a normal
/// end of output rather than a panic.
fn out(text: &str) {
    use std::io::Write;
    let mut stdout = std::io::stdout();
    if stdout
        .write_all(text.as_bytes())
        .and_then(|()| stdout.flush())
        .is_err()
    {
        std::process::exit(0);
    }
}

macro_rules! outln {
    () => { out("\n") };
    ($($arg:tt)*) => { out(&format!("{}\n", format_args!($($arg)*))) };
}

const USAGE: &str = "wsnem — energy-model scenario runner

USAGE:
    wsnem <COMMAND> [OPTIONS]

COMMANDS:
    list                       List built-in scenarios
    run [FILES|DIRS..] [OPTIONS]
                               Run scenario files, whole directories of them
                               and/or built-ins; directory runs answer
                               unchanged scenarios from the content-hash
                               result cache (.wsnem-cache/ inside the
                               directory)
    gen <DIR> [OPTIONS]        Generate a scenario fleet into DIR: grid,
                               seeded-random or Latin-hypercube samples over
                               declared fields, one file per scenario plus a
                               manifest.json recording the generator spec
    serve <DIRS..> [OPTIONS]   Run a fleet as a distributed coordinator:
                               listen on --addr, lease content-hash shards to
                               pulling workers, reassign the shards of
                               crashed or silent workers, and fall back to an
                               in-process run if no worker appears within the
                               grace window; accepts the run options too
    worker <ADDR> [OPTIONS]    Join a coordinator as a pull worker: compute
                               shards, stream results back, heartbeat while
                               computing, and reconnect with exponential
                               backoff + jitter when the connection drops
    compare [FILE|DIR] [OPTIONS]
                               Run EVERY registered backend over a scenario's
                               base point and sweep, and emit the paper's
                               Table 4/5 cross-backend comparison matrix
                               (per-state deltas in percentage points plus
                               wall-clock cost per backend)
    trace [FILE] [OPTIONS]     Run one scenario's CPU model with a trace
                               observer attached and emit an NDJSON event
                               stream (firings, state changes, queue depths);
                               attaching the tracer never perturbs the run
    profile [FILES..] [OPTIONS]
                               Run scenarios and print a wall-clock profile:
                               per-scenario phase timings (base / sweep /
                               network), per-backend solver cost and batch
                               worker utilization
    check [FILES|DIRS..] [OPTIONS]
                               Statically verify scenarios (or raw *.net.json
                               Petri-net specs) without running them: schema
                               and backend checks, queue stability on the
                               forwarding-inflated arrival rate, radio airtime
                               saturation, and net-level proofs (semiflows,
                               deadlock, dead transitions); exits non-zero
                               when any error-severity lint fires
    validate <FILES..>         Schema-level checks only (check --only-schema):
                               parse + validate scenario files, reporting
                               every finding as a coded diagnostic
    export <NAME> [OPTIONS]    Print a built-in scenario as a file
    topology [FILE] [--builtin <NAME>] [--limit <N>]
                               Inspect a scenario's multi-hop routing:
                               per-node next hop, hop depth, subtree size,
                               forwarding load and radio MAC (no model
                               evaluation); prints at most N rows
                               (default 50) before an \"… and K more\" footer
    radio [FILE] [--builtin <NAME> | --preset <NAME>]
                               Inspect duty-cycle radio/MAC specs: lowered
                               timing numbers, derived duty cycle, the
                               per-state power split and a
                               lifetime-vs-traffic table
    help                       Show this help

RUN OPTIONS:
    --all                 Run every built-in scenario
    --builtin <NAME>      Run one built-in (repeatable)
    --all-files <DIR>     Run every scenario file in DIR (same as passing the
                          directory as a positional argument; repeatable)
    --format <FMT>        Output format: summary (default), json, csv
    --out, -o <FILE>      Write the report there instead of stdout
    --threads <N>         Parallelism across scenarios (default: all cores)
    --quick               Shrink replications/horizons for a fast smoke run
    --no-cache            Neither read nor write the directory result cache
    --refresh             Re-simulate everything, overwriting cached results
    --strict              Make duplicate scenario names an error instead of a
                          skip-with-warning
    --no-check            Skip the static preflight (run/compare check every
                          scenario first; errors abort before any event fires,
                          warnings go to stderr)
    --verbose, -v         Show the live progress line even without a TTY and
                          print batch metrics (workers, utilization) at the end
    --quiet, -q           Suppress the progress line and informational stderr
    --limit <N>           Per-node lines in a summary's network section before
                          an \"… and K more\" footer (default 50)
    --scenario-timeout <SECS>
                          Per-scenario wall-clock watchdog: a scenario that
                          exceeds it is marked failed with a W006 diagnostic
                          instead of hanging the batch; exits non-zero only
                          under --strict
    --distributed <ADDR>  Serve this run's shards to `wsnem worker` processes
                          from ADDR (host:port) instead of simulating
                          in-process; equivalent to `wsnem serve --addr ADDR`

SERVE OPTIONS (in addition to the run options):
    --addr <ADDR>         Listen address (default 127.0.0.1:7177; port 0
                          picks a free port, announced on stderr)
    --grace <SECS>        Zero-worker grace window before the remaining
                          shards run in-process (default 10)
    --lease-timeout <SECS>
                          Shard lease: a leased shard whose worker neither
                          heartbeats nor answers within this window is
                          reassigned (default 30)
    --liveness-timeout <SECS>
                          Connection liveness: a worker silent for this long
                          is reaped and its leases reassigned (default 10)

WORKER OPTIONS:
    --name <NAME>         Worker name shown in coordinator diagnostics
                          (default worker-<pid>)
    --cache <DIR>         Local result-cache directory (.wsnem-cache format);
                          a rejoining worker answers already-computed shards
                          from it without recomputing
    --retries <N>         Consecutive failed connection attempts before
                          giving up (default 10)
    --heartbeat <MS>      Heartbeat period in milliseconds (default 1000)
    --scenario-timeout <SECS>
                          Local watchdog override (default: whatever the
                          coordinator announces)
    --fault-plan <SPEC>   Scripted misbehavior for drills and tests:
                          comma-separated kill-after=N, drop-mid-frame=N,
                          corrupt-frame=N, delay-heartbeat=N:STALL_MS

GEN OPTIONS:
    --field <SPEC>        Sampled field as name=min:max[:points], repeatable.
                          Fields: lambda, service-mean, radio-check-interval,
                          fanout, node-count ([:points] sizes grid axes only,
                          default 3)
    --method <M>          Sampling method: grid (default), random, lhs
    --count <N>           Sample count (random/lhs; a grid's size is the
                          product of its per-field points)
    --seed <N>            RNG seed for random/lhs (default 42)
    --base <FILE>         Base scenario file the samples are applied to
    --builtin <NAME>      Base built-in scenario (default: paper-defaults)
    --prefix <NAME>       Scenario/file name prefix (default: fleet)
    --format <FMT>        Generated file format: toml (default), json
    --check               Verify DIR against its manifest.json instead of
                          generating: missing / renamed / drifted / extra
                          files come back as manifest-mismatch diagnostics

CHECK OPTIONS:
    --all                 Check every built-in scenario
    --builtin <NAME>      Check one built-in (repeatable)
    --only-schema         Skip the net-level passes (what validate runs)
    --format <FMT>        Output format: human (default), json
    -W, --warn <LINT>     Report LINT (code or name) at warning severity
    -D, --deny <LINT>     Report LINT at error severity; `-D warnings`
                          escalates every warning, rustc-style
    -A, --allow <LINT>    Suppress LINT entirely
    --verbose, -v         Also print info-severity findings (human format)

TRACE OPTIONS:
    --builtin <NAME>      Trace a built-in scenario's CPU parameters
    --backend <B>         Kernel to trace: des (default) or petri
    --out, -o <FILE>      Write the NDJSON stream there instead of stdout
    --limit <N>           Stop recording after N trace records
    --sample <N>          Record every N-th admissible event only
    --seed <N>            RNG seed (default: the scenario's master seed)

PROFILE OPTIONS:
    --all                 Profile every built-in scenario
    --builtin <NAME>      Profile one built-in (repeatable)
    --threads <N>         Parallelism across scenarios (default: all cores)
    --quick               Shrink replications/horizons for a fast smoke run

COMPARE OPTIONS:
    --builtin <NAME>      Compare a built-in scenario
    --all-files <DIR>     Compare every scenario file in DIR (a directory
                          positional means the same); matrices merge into one
                          CSV/JSON document in sorted file order
    --format <FMT>        Output format: summary (default), json, csv
    --out, -o <FILE>      Write the matrix there instead of stdout
    --threads <N>         Replication worker threads (default: all cores)
    --quick               Shrink replications/horizons for a fast smoke run
    --no-check            Skip the static preflight
    --scenario-timeout <SECS>
                          Per-scenario wall-clock watchdog: a matrix whose
                          scenario exceeds it is skipped with a W006
                          diagnostic; exits non-zero only under --strict
    --strict              Make watchdog timeouts an error
    --max-delta-pp <PP>   Exit non-zero if any backend's mean |Δ| vs the
                          reference exceeds PP percentage points
    --tiered              Skip the simulation backends at points whose
                          utilization rho stays below 0.9 (the analytic
                          closed forms are exact there); skipped cells show
                          \"skipped by tiering\" at zero cost

EXPORT OPTIONS:
    --format <FMT>        File format: toml (default), json
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        None => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
        Some((c, rest)) => (c.as_str(), rest),
    };
    let result = match command {
        "list" => cmd_list(),
        "run" => cmd_run(rest),
        "serve" => cmd_serve(rest),
        "worker" => cmd_worker(rest),
        "gen" => cmd_gen(rest),
        "trace" => cmd_trace(rest),
        "profile" => cmd_profile(rest),
        "compare" => cmd_compare(rest),
        "check" => cmd_check(rest),
        "validate" => cmd_validate(rest),
        "export" => cmd_export(rest),
        "topology" => cmd_topology(rest),
        "radio" => cmd_radio(rest),
        "help" | "--help" | "-h" => {
            out(USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), String> {
    let scenarios = builtin::all();
    outln!("{} built-in scenarios:\n", scenarios.len());
    for s in &scenarios {
        let features: Vec<&str> = [
            s.sweep.as_ref().map(|_| "sweep"),
            s.network.as_ref().map(|_| "network"),
            s.network
                .as_ref()
                .and_then(|n| n.topology.as_ref())
                .map(|t| t.label()),
            s.workload
                .as_ref()
                .filter(|w| !w.is_poisson())
                .map(|_| "non-poisson workload"),
            s.service
                .as_ref()
                .filter(|d| !d.is_exponential())
                .map(|_| "non-exponential service"),
        ]
        .into_iter()
        .flatten()
        .collect();
        let backends: Vec<String> = s.backends.iter().map(|b| b.to_string()).collect();
        outln!("  {}", s.name);
        outln!("      backends: {}", backends.join(", "));
        if !features.is_empty() {
            outln!("      features: {}", features.join(", "));
        }
        for line in wrap(&s.description, 72) {
            outln!("      {line}");
        }
        outln!();
    }
    outln!("Run them with `wsnem run --all` or `wsnem run --builtin <name>`;");
    outln!("export one as a starting point with `wsnem export <name>`.");
    Ok(())
}

#[derive(Default)]
struct RunOptions {
    /// Positional arguments: scenario files or fleet directories (told
    /// apart on the filesystem at gather time).
    paths: Vec<String>,
    /// `--all-files <DIR>` spellings, appended after the positionals.
    dirs: Vec<String>,
    builtins: Vec<String>,
    all: bool,
    format: String,
    out: Option<String>,
    threads: Option<usize>,
    quick: bool,
    no_cache: bool,
    refresh: bool,
    strict: bool,
    no_check: bool,
    verbose: bool,
    quiet: bool,
    /// Per-node lines in a summary's network section (`--limit`).
    node_limit: usize,
    /// Per-scenario wall-clock watchdog in seconds (`--scenario-timeout`).
    scenario_timeout: Option<f64>,
    /// `run --distributed <ADDR>` / `serve`: coordinate this fleet over TCP
    /// from this listen address instead of simulating in-process.
    distributed: Option<String>,
    /// `serve --addr <ADDR>` (folded into `distributed` by `cmd_serve`).
    addr: Option<String>,
    /// Zero-worker grace window in seconds (`--grace`).
    grace: Option<f64>,
    /// Shard lease in seconds (`--lease-timeout`).
    lease_timeout: Option<f64>,
    /// Worker liveness window in seconds (`--liveness-timeout`).
    liveness_timeout: Option<f64>,
}

/// Parse a positive, finite seconds value for `flag`.
fn parse_seconds(flag: &str, v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite() && *x > 0.0)
        .ok_or_else(|| format!("{flag} expects a positive number of seconds, got `{v}`"))
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, String> {
    let mut o = RunOptions {
        format: "summary".into(),
        node_limit: DEFAULT_SUMMARY_NODE_LIMIT,
        ..RunOptions::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => o.all = true,
            "--quick" => o.quick = true,
            "--no-cache" => o.no_cache = true,
            "--refresh" => o.refresh = true,
            "--strict" => o.strict = true,
            "--no-check" => o.no_check = true,
            "--verbose" | "-v" => o.verbose = true,
            "--quiet" | "-q" => o.quiet = true,
            "--builtin" => o.builtins.push(required(&mut it, "--builtin <NAME>")?),
            "--all-files" => o.dirs.push(required(&mut it, "--all-files <DIR>")?),
            "--format" => o.format = required(&mut it, "--format <FMT>")?,
            "--out" | "-o" => o.out = Some(required(&mut it, "--out <FILE>")?),
            "--threads" => {
                let v = required(&mut it, "--threads <N>")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                o.threads = Some(n);
            }
            "--limit" => {
                let v = required(&mut it, "--limit <N>")?;
                o.node_limit = v
                    .parse()
                    .map_err(|_| format!("--limit expects a non-negative integer, got `{v}`"))?;
            }
            "--scenario-timeout" => {
                let v = required(&mut it, "--scenario-timeout <SECS>")?;
                o.scenario_timeout = Some(parse_seconds("--scenario-timeout", &v)?);
            }
            "--distributed" => o.distributed = Some(required(&mut it, "--distributed <ADDR>")?),
            "--addr" => o.addr = Some(required(&mut it, "--addr <ADDR>")?),
            "--grace" => {
                let v = required(&mut it, "--grace <SECS>")?;
                o.grace = Some(parse_seconds("--grace", &v)?);
            }
            "--lease-timeout" => {
                let v = required(&mut it, "--lease-timeout <SECS>")?;
                o.lease_timeout = Some(parse_seconds("--lease-timeout", &v)?);
            }
            "--liveness-timeout" => {
                let v = required(&mut it, "--liveness-timeout <SECS>")?;
                o.liveness_timeout = Some(parse_seconds("--liveness-timeout", &v)?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            file => o.paths.push(file.to_owned()),
        }
    }
    if !matches!(o.format.as_str(), "summary" | "json" | "csv") {
        return Err(format!(
            "unknown format `{}` (expected summary, json or csv)",
            o.format
        ));
    }
    if o.no_cache && o.refresh {
        return Err("--no-cache and --refresh are mutually exclusive".into());
    }
    Ok(o)
}

impl RunOptions {
    fn cache_mode(&self) -> CacheMode {
        if self.no_cache {
            CacheMode::Disabled
        } else if self.refresh {
            CacheMode::Refresh
        } else {
            CacheMode::ReadWrite
        }
    }
}

fn required(it: &mut std::slice::Iter<'_, String>, what: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("missing value for {what}"))
}

/// Resolve the one scenario a subcommand operates on: a file path or a
/// `--builtin` name, mutually exclusive. `command` names the caller in the
/// nothing-given error (shared by `compare`, `topology` and `radio`).
fn resolve_scenario(
    file: Option<String>,
    builtin_name: Option<String>,
    command: &str,
) -> Result<Scenario, String> {
    match (file, builtin_name) {
        (Some(_), Some(_)) => {
            Err("pass either a scenario file or --builtin <NAME>, not both".into())
        }
        (None, None) => Err(format!(
            "{command} expects a scenario file or --builtin <NAME>"
        )),
        (Some(f), None) => files::load(&f).map_err(|e| e.to_string()),
        (None, Some(n)) => builtin::find(&n).map_err(|e| e.to_string()),
    }
}

/// Shrink a scenario for smoke runs (`--quick`): fewer replications,
/// shorter horizons, thinner sweeps.
fn shrink(mut s: Scenario) -> Scenario {
    s.cpu = s
        .cpu
        .with_replications(2)
        .with_horizon(300.0)
        .with_warmup(s.cpu.warmup.min(30.0));
    if let Some(sweep) = &mut s.sweep {
        if sweep.values.len() > 3 {
            let n = sweep.values.len();
            sweep.values = vec![sweep.values[0], sweep.values[n / 2], sweep.values[n - 1]];
        }
    }
    s
}

/// Everything one `run`/`profile` invocation executes: the scenario list
/// (already `--quick`-shrunk, so cache keys see exactly what runs) plus,
/// for scenarios that came from a fleet directory, the directory's result
/// cache.
struct Gathered {
    scenarios: Vec<Scenario>,
    /// One cache per fleet directory, in first-use order.
    caches: Vec<ResultCache>,
    /// `cache_of[i]` indexes `caches` for `scenarios[i]` (`None` for
    /// builtins and single files, which are not cached).
    cache_of: Vec<Option<usize>>,
}

impl Gathered {
    /// The per-scenario cache slots [`fleet::run_cached`] expects.
    fn cache_refs(&self) -> Vec<Option<&ResultCache>> {
        self.cache_of
            .iter()
            .map(|c| c.map(|i| &self.caches[i]))
            .collect()
    }

    /// True when any scenario is cache-backed (drives whether hit/miss
    /// counts appear in the batch line).
    fn any_cached(&self) -> bool {
        !self.caches.is_empty()
    }
}

fn gather_scenarios(o: &RunOptions, command: &str) -> Result<Gathered, String> {
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    let mut cache_of: Vec<Option<usize>> = Vec::new();
    let mut caches: Vec<ResultCache> = Vec::new();

    // De-duplicate by scenario name across every source: duplicate keys
    // would collide in the merged CSV/JSON rows and in the result cache.
    // First occurrence wins; later ones are skipped with a warning
    // (an error under --strict).
    let add = |scenario: Scenario,
               source: String,
               cache: Option<usize>,
               scenarios: &mut Vec<Scenario>,
               sources: &mut Vec<String>,
               cache_of: &mut Vec<Option<usize>>|
     -> Result<(), String> {
        if let Some(i) = scenarios.iter().position(|s| s.name == scenario.name) {
            let msg = format!(
                "duplicate scenario `{}`: from {} and {}",
                scenario.name, sources[i], source
            );
            if o.strict {
                return Err(format!("{msg} (--strict)"));
            }
            if !o.quiet {
                eprintln!("warning: {msg}; keeping the first");
            }
            return Ok(());
        }
        scenarios.push(scenario);
        sources.push(source);
        cache_of.push(cache);
        Ok(())
    };

    if o.all {
        for s in builtin::all() {
            add(
                s,
                "--all".into(),
                None,
                &mut scenarios,
                &mut sources,
                &mut cache_of,
            )?;
        }
    }
    for name in &o.builtins {
        add(
            builtin::find(name).map_err(|e| e.to_string())?,
            format!("--builtin {name}"),
            None,
            &mut scenarios,
            &mut sources,
            &mut cache_of,
        )?;
    }
    // Positional paths: plain files load directly; directories walk as
    // fleets (sorted file order) and get a result cache inside them. Files
    // parse *without* validating — the preflight below reports every
    // semantic problem as a coded diagnostic instead of one hard error.
    let dirs = o.dirs.iter().map(|d| (d, true));
    for (path, forced_dir) in o.paths.iter().map(|p| (p, false)).chain(dirs) {
        if forced_dir || Path::new(path).is_dir() {
            let fleet = parse_dir(path)?;
            // `--no-cache` must not even create the cache directory. A
            // cache that cannot be opened at all (read-only directory, a
            // file parked at `.wsnem-cache`) degrades the same way a failed
            // store does: warn once and run that fleet uncached.
            let cache_index = if o.no_cache {
                None
            } else {
                match ResultCache::open_under(path) {
                    Ok(cache) => {
                        caches.push(cache);
                        Some(caches.len() - 1)
                    }
                    Err(e) => {
                        if !o.quiet {
                            eprintln!(
                                "warning: cannot open the result cache under {path}: {e} \
                                 (running uncached)"
                            );
                        }
                        None
                    }
                }
            };
            for (file, scenario) in fleet {
                add(
                    scenario,
                    file.display().to_string(),
                    cache_index,
                    &mut scenarios,
                    &mut sources,
                    &mut cache_of,
                )?;
            }
        } else {
            add(
                files::parse(path).map_err(|e| e.to_string())?,
                path.clone(),
                None,
                &mut scenarios,
                &mut sources,
                &mut cache_of,
            )?;
        }
    }
    if scenarios.is_empty() {
        return Err(format!(
            "nothing to {command}: pass scenario files or directories, \
             --builtin <name>, --all-files <dir> or --all"
        ));
    }
    // Static preflight (skipped by `--no-check`): errors abort here, before
    // a single event fires; warnings go to stderr and the run proceeds.
    if !o.no_check {
        preflight(&scenarios, o.quiet)?;
    }
    // Shrink BEFORE the cache sees the scenarios: `--quick` runs hash (and
    // therefore cache) separately from full-fidelity runs.
    if o.quick {
        scenarios = scenarios.into_iter().map(shrink).collect();
    }
    Ok(Gathered {
        scenarios,
        caches,
        cache_of,
    })
}

/// Discover and parse every scenario file in a fleet directory *without*
/// validating (the preflight reports semantic problems as coded
/// diagnostics). Parse failures stay hard errors — there is no scenario to
/// carry into the batch.
fn parse_dir(dir: &str) -> Result<Vec<(std::path::PathBuf, Scenario)>, String> {
    let paths = fleet::discover(dir).map_err(|e| e.to_string())?;
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let scenario = files::parse(&path).map_err(|e| e.to_string())?;
        out.push((path, scenario));
    }
    Ok(out)
}

/// Static preflight for `run`, `profile` and `compare`: the scenario-level
/// checks from `wsnem check --only-schema` over everything about to
/// simulate. Net-level passes are skipped — on a scenario's own EDSPN they
/// can only restate structural facts, and preflight must stay cheap at
/// fleet scale. Error-severity findings abort the invocation; warnings go
/// to stderr (suppressed by `--quiet`).
fn preflight(scenarios: &[Scenario], quiet: bool) -> Result<(), String> {
    let registry = wsnem_scenario::global_registry();
    let config = wsnem_analysis::LintConfig::default();
    let opts = wsnem_analysis::CheckOptions { only_schema: true };
    let mut errors = 0usize;
    for s in scenarios {
        for d in wsnem_analysis::resolve(wsnem_analysis::check_scenario(s, registry, opts), &config)
        {
            match d.severity {
                wsnem_analysis::Severity::Error => {
                    errors += 1;
                    eprintln!("{d}");
                }
                wsnem_analysis::Severity::Warning if !quiet => eprintln!("{d}"),
                _ => {}
            }
        }
    }
    if errors > 0 {
        return Err(format!(
            "preflight found {errors} error(s); nothing was simulated \
             (inspect with `wsnem check`, or rerun with --no-check to force)"
        ));
    }
    Ok(())
}

/// One-line batch metrics footer shared by the summary format, `-v` and
/// `profile`. `cache` adds hit/miss counts when a result cache was in play;
/// `dist` adds the distribution counters after a `serve`/`--distributed`
/// run.
fn batch_line(m: &BatchMetrics, cache: Option<&CacheStats>, dist: Option<&DistStats>) -> String {
    let mut line = format!(
        "batch: {} scenario(s) in {:.3} s — {} worker(s), utilization {:.0}%, {:.2} scenarios/s",
        m.scenarios,
        m.wall_seconds,
        m.workers,
        100.0 * m.utilization,
        m.scenarios_per_second
    );
    if let Some(c) = cache {
        line.push_str(&format!(
            " — cache: {} hit(s), {} miss(es)",
            c.hits, c.misses
        ));
    }
    if let Some(d) = dist {
        line.push_str(&format!(
            " — distributed: {} worker(s), {} remote + {} local shard(s), {} reassigned",
            d.workers_seen, d.shards_remote, d.shards_local, d.reassigned
        ));
        if d.fell_back_local {
            line.push_str(", local fallback");
        }
    }
    line
}

/// Display width of the scenario-name column in the progress line.
const PROGRESS_NAME_WIDTH: usize = 32;

/// Truncate `name` to at most `width` characters, marking the cut with an
/// ellipsis — long fleet-generated names must not widen the progress line
/// past what the clearing write erases.
fn truncate_name(name: &str, width: usize) -> String {
    if name.chars().count() <= width {
        return name.to_owned();
    }
    let mut s: String = name.chars().take(width.saturating_sub(1)).collect();
    s.push('…');
    s
}

/// Render one progress line: `[done/total] name (elapsed ..., ETA ...)`,
/// with the name truncated-then-padded to a fixed column.
fn progress_line(done: usize, total: usize, name: &str, elapsed: f64, eta: f64) -> String {
    format!(
        "[{done}/{total}] {:<width$} (elapsed {elapsed:.1} s, ETA {eta:.1} s)",
        truncate_name(name, PROGRESS_NAME_WIDTH),
        width = PROGRESS_NAME_WIDTH
    )
}

/// What one batch execution hands back to its command: per-scenario
/// results in input order, the wall-clock metrics, the cache hit/miss
/// split, and — for `serve` / `--distributed` runs — the distribution
/// counters.
type BatchRun = (
    Vec<Result<ScenarioReport, wsnem_scenario::ScenarioError>>,
    BatchMetrics,
    CacheStats,
    Option<DistStats>,
);

/// Run a gathered batch with the live progress line (TTY or `-v`, unless
/// `-q`): `[done/total] name (ETA ...)`, rewritten in place on stderr.
/// Cache-backed scenarios resolve through the fleet runner, whose hit/miss
/// counts come back in the returned [`CacheStats`]. With
/// `--distributed <ADDR>` the batch is coordinated over TCP instead:
/// workers pull shards, and the distribution counters come back alongside.
fn run_with_progress(g: &Gathered, o: &RunOptions) -> Result<BatchRun, String> {
    let show_progress = !o.quiet && (o.verbose || std::io::stderr().is_terminal());
    let started = Instant::now();
    // Rewriting the line in place only erases the previous write if we
    // clear by its *actual* width — a fixed 80-column wipe left residue
    // from longer lines (and total/ETA digits shrink over a run).
    let last_width = std::sync::atomic::AtomicUsize::new(0);
    let last_width_ref = &last_width;
    let progress = move |done: usize, total: usize, name: &str| {
        let elapsed = started.elapsed().as_secs_f64();
        let eta = if done > 0 {
            elapsed / done as f64 * (total - done) as f64
        } else {
            0.0
        };
        let line = progress_line(done, total, name, elapsed, eta);
        let width = line.chars().count();
        let prev = last_width_ref.swap(width, std::sync::atomic::Ordering::Relaxed);
        eprint!("\r{line:<prev$}");
        let _ = std::io::Write::flush(&mut std::io::stderr());
    };
    let on_done = show_progress.then_some(&progress as &(dyn Fn(usize, usize, &str) + Sync));
    let (results, metrics, cache_stats, dist) = match &o.distributed {
        None => {
            let (results, metrics, cache_stats) = fleet::run_cached_with(
                &g.scenarios,
                &g.cache_refs(),
                fleet::FleetRunOptions {
                    threads: o.threads,
                    mode: o.cache_mode(),
                    timeout_seconds: o.scenario_timeout,
                },
                on_done,
            );
            (results, metrics, cache_stats, None)
        }
        Some(addr) => {
            let defaults = ServeOptions::default();
            let cache_refs = g.cache_refs();
            let coord = Coordinator::bind(
                &g.scenarios,
                &cache_refs,
                o.cache_mode(),
                ServeOptions {
                    addr: addr.clone(),
                    grace_seconds: o.grace.unwrap_or(defaults.grace_seconds),
                    lease_seconds: o.lease_timeout.unwrap_or(defaults.lease_seconds),
                    liveness_seconds: o.liveness_timeout.unwrap_or(defaults.liveness_seconds),
                    threads: o.threads,
                    timeout_seconds: o.scenario_timeout,
                },
            )
            .map_err(|e| e.to_string())?;
            if !o.quiet {
                let bound = coord.local_addr().map_err(|e| e.to_string())?;
                eprintln!(
                    "serving {} scenario(s) on {bound} (join with `wsnem worker {bound}`)",
                    g.scenarios.len()
                );
            }
            let outcome = coord.run(on_done).map_err(|e| e.to_string())?;
            (
                outcome.results,
                outcome.metrics,
                outcome.cache,
                Some(outcome.dist),
            )
        }
    };
    if show_progress {
        // Clear the progress line so reports start on a clean row.
        let width = last_width.load(std::sync::atomic::Ordering::Relaxed);
        eprint!("\r{:<width$}\r", "");
        let _ = std::io::Write::flush(&mut std::io::stderr());
    }
    if o.verbose && !o.quiet {
        eprintln!(
            "{}",
            batch_line(
                &metrics,
                g.any_cached().then_some(&cache_stats),
                dist.as_ref()
            )
        );
    }
    Ok((results, metrics, cache_stats, dist))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let o = parse_run_options(args)?;
    run_command(o, "run")
}

/// `wsnem serve <DIRS..>`: a `run` that always coordinates over TCP —
/// `--addr` (default 127.0.0.1:7177) takes the place of `--distributed`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut o = parse_run_options(args)?;
    if o.distributed.is_some() {
        return Err("serve listens on --addr; --distributed belongs to `wsnem run`".into());
    }
    o.distributed = Some(
        o.addr
            .clone()
            .unwrap_or_else(|| ServeOptions::default().addr),
    );
    run_command(o, "serve")
}

/// Shared body of `run` and `serve`, after the options are settled.
fn run_command(o: RunOptions, command: &str) -> Result<(), String> {
    let g = gather_scenarios(&o, command)?;
    let (results, metrics, cache_stats, dist) = run_with_progress(&g, &o)?;
    let cache = g.any_cached().then_some(&cache_stats);
    let mut reports = Vec::new();
    let mut failures = Vec::new();
    let mut timeouts = 0usize;
    for (s, r) in g.scenarios.iter().zip(results) {
        match r {
            Ok(report) => reports.push(report),
            // A watchdog timeout is an expected outcome of the run the user
            // configured, not a malfunction: report it as a coded
            // diagnostic, and fail the invocation only under --strict.
            Err(wsnem_scenario::ScenarioError::Timeout { seconds }) => {
                timeouts += 1;
                eprintln!(
                    "{}",
                    wsnem_analysis::lints::SCENARIO_TIMEOUT.at(
                        wsnem_analysis::Location::scenario(&s.name),
                        format!(
                            "exceeded the {seconds} s wall-clock watchdog and was marked failed"
                        )
                    )
                );
            }
            Err(e) => failures.push(format!("{}: {e}", s.name)),
        }
    }

    let rendered = render(&reports, &metrics, cache, dist, &o.format, o.node_limit)?;
    match &o.out {
        None => out(&rendered),
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            if !o.quiet {
                eprintln!(
                    "wrote {} report(s) to {path} ({} format)",
                    reports.len(),
                    o.format
                );
            }
        }
    }
    // The CSV body must stay aligned with its header, so batch metrics go
    // to stderr there (JSON and summary carry them inline).
    if o.format == "csv" && !o.quiet {
        eprintln!("{}", batch_line(&metrics, cache, dist.as_ref()));
    }

    if !failures.is_empty() {
        return Err(format!(
            "{} of {} scenario(s) failed:\n  {}",
            failures.len(),
            g.scenarios.len(),
            failures.join("\n  ")
        ));
    }
    if timeouts > 0 && o.strict {
        return Err(format!(
            "{timeouts} scenario(s) hit the --scenario-timeout watchdog (--strict)"
        ));
    }
    Ok(())
}

/// `wsnem worker <ADDR>`: join a coordinator as a pull worker.
fn cmd_worker(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut opts = WorkerOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--name" => opts.name = required(&mut it, "--name <NAME>")?,
            "--cache" => {
                opts.cache_dir = Some(required(&mut it, "--cache <DIR>")?.into());
            }
            "--fault-plan" => {
                let spec = required(&mut it, "--fault-plan <SPEC>")?;
                opts.fault_plan = FaultPlan::parse(&spec)?;
            }
            "--retries" => {
                let v = required(&mut it, "--retries <N>")?;
                opts.max_retries = v
                    .parse()
                    .map_err(|_| format!("--retries expects a non-negative integer, got `{v}`"))?;
            }
            "--heartbeat" => {
                let v = required(&mut it, "--heartbeat <MS>")?;
                opts.heartbeat_ms =
                    v.parse().ok().filter(|ms| *ms > 0).ok_or_else(|| {
                        format!("--heartbeat expects milliseconds >= 1, got `{v}`")
                    })?;
            }
            "--scenario-timeout" => {
                let v = required(&mut it, "--scenario-timeout <SECS>")?;
                opts.timeout_seconds = Some(parse_seconds("--scenario-timeout", &v)?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            positional => {
                if addr.replace(positional.to_owned()).is_some() {
                    return Err("worker expects exactly one coordinator address".into());
                }
            }
        }
    }
    let addr = addr.ok_or("worker expects a coordinator address (host:port)")?;
    let summary =
        wsnem_fleetd::run_worker(&addr, opts).map_err(|e| format!("worker on {addr}: {e}"))?;
    eprintln!(
        "worker done: {} shard(s) ({} from cache), {} session(s), {} reconnect(s){}",
        summary.shards_done,
        summary.cache_hits,
        summary.sessions,
        summary.reconnects,
        if summary.killed {
            " — killed by fault plan"
        } else {
            ""
        }
    );
    Ok(())
}

/// JSON envelope for `wsnem run --format json`: the report list plus the
/// batch metrics and, for cache-backed (directory) runs, the hit/miss
/// counts.
#[derive(serde::Serialize)]
struct RunOutput {
    batch: BatchMetrics,
    cache: Option<CacheStats>,
    distributed: Option<DistStats>,
    reports: Vec<ScenarioReport>,
}

fn render(
    reports: &[ScenarioReport],
    metrics: &BatchMetrics,
    cache: Option<&CacheStats>,
    dist: Option<DistStats>,
    format: &str,
    node_limit: usize,
) -> Result<String, String> {
    match format {
        "json" => serde_json::to_string_pretty(&RunOutput {
            batch: *metrics,
            cache: cache.copied(),
            distributed: dist,
            reports: reports.to_vec(),
        })
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| e.to_string()),
        "csv" => {
            let mut out = String::from(ScenarioReport::CSV_HEADER);
            out.push('\n');
            for r in reports {
                for row in r.csv_rows() {
                    out.push_str(&row);
                    out.push('\n');
                }
            }
            Ok(out)
        }
        _ => {
            let mut out = String::new();
            for r in reports {
                out.push_str(&r.summary_with_node_limit(node_limit));
                out.push('\n');
            }
            out.push_str(&batch_line(metrics, cache, dist.as_ref()));
            out.push('\n');
            Ok(out)
        }
    }
}

/// Parse one `--field` value: `name=min:max[:points]`.
fn parse_field_spec(spec: &str) -> Result<FieldSpec, String> {
    let usage = "expected name=min:max[:points]";
    let (name, range) = spec
        .split_once('=')
        .ok_or_else(|| format!("invalid --field `{spec}`: {usage}"))?;
    let field = GenField::parse_name(name).ok_or_else(|| {
        let known: Vec<&str> = GenField::ALL.iter().map(|f| f.name()).collect();
        format!(
            "unknown --field name `{name}` (expected one of: {})",
            known.join(", ")
        )
    })?;
    let parts: Vec<&str> = range.split(':').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(format!("invalid --field `{spec}`: {usage}"));
    }
    let num = |s: &str| -> Result<f64, String> {
        s.parse()
            .map_err(|_| format!("invalid --field `{spec}`: `{s}` is not a number"))
    };
    let points = match parts.get(2) {
        None => None,
        Some(p) => Some(p.parse::<usize>().map_err(|_| {
            format!("invalid --field `{spec}`: `{p}` is not a positive point count")
        })?),
    };
    Ok(FieldSpec {
        field,
        min: num(parts[0])?,
        max: num(parts[1])?,
        points,
    })
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut fields: Vec<FieldSpec> = Vec::new();
    let mut method = GenMethod::Grid;
    let mut count: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut base_file: Option<String> = None;
    let mut base_builtin: Option<String> = None;
    let mut prefix = "fleet".to_owned();
    let mut format = FileFormat::Toml;
    let mut check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--field" => fields.push(parse_field_spec(&required(&mut it, "--field <SPEC>")?)?),
            "--method" => {
                let v = required(&mut it, "--method <M>")?;
                method = GenMethod::parse_name(&v).ok_or_else(|| {
                    format!("unknown --method `{v}` (expected grid, random or lhs)")
                })?;
            }
            "--count" => {
                let v = required(&mut it, "--count <N>")?;
                count = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| format!("--count expects a positive integer, got `{v}`"))?,
                );
            }
            "--seed" => {
                let v = required(&mut it, "--seed <N>")?;
                seed = v
                    .parse()
                    .map_err(|_| format!("--seed expects an integer, got `{v}`"))?;
            }
            "--base" => base_file = Some(required(&mut it, "--base <FILE>")?),
            "--builtin" => base_builtin = Some(required(&mut it, "--builtin <NAME>")?),
            "--prefix" => prefix = required(&mut it, "--prefix <NAME>")?,
            "--format" => {
                let v = required(&mut it, "--format <FMT>")?;
                format = match v.as_str() {
                    "toml" => FileFormat::Toml,
                    "json" => FileFormat::Json,
                    other => {
                        return Err(format!("unknown format `{other}` (expected toml or json)"))
                    }
                };
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            d if dir.is_none() => dir = Some(d.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let dir = dir.ok_or("gen expects an output directory")?;
    if check {
        // Verification mode: compare the directory against what its
        // manifest.json deterministically regenerates.
        if !fields.is_empty() || count.is_some() || base_file.is_some() || base_builtin.is_some() {
            return Err("--check verifies an existing fleet against its manifest; \
                 generator options do not apply"
                .into());
        }
        let resolved = wsnem_analysis::resolve(
            wsnem_analysis::manifest::check_fleet_dir(Path::new(&dir)),
            &wsnem_analysis::LintConfig::default(),
        );
        for d in &resolved {
            outln!("{d}");
        }
        let c = wsnem_analysis::counts(&resolved);
        if c.errors > 0 {
            return Err(format!(
                "{dir}: fleet does not match its manifest ({} error(s))",
                c.errors
            ));
        }
        eprintln!("{dir}: fleet matches its manifest");
        return Ok(());
    }
    if method == GenMethod::Grid && count.is_some() {
        return Err(
            "--count applies to --method random/lhs; a grid's size is the \
                    product of its per-field points"
                .into(),
        );
    }
    // The paper baseline is the natural base point for a parameter study.
    let base = match (base_file, base_builtin) {
        (Some(_), Some(_)) => {
            return Err("pass either --base <FILE> or --builtin <NAME>, not both".into())
        }
        (Some(f), None) => files::load(&f).map_err(|e| e.to_string())?,
        (None, Some(n)) => builtin::find(&n).map_err(|e| e.to_string())?,
        (None, None) => builtin::find("paper-defaults").map_err(|e| e.to_string())?,
    };
    let spec = GenSpec {
        method,
        count: count.unwrap_or(10),
        seed,
        prefix,
        fields,
    };
    let manifest = gen::write_fleet(&dir, &base, &spec, format).map_err(|e| e.to_string())?;
    let axes: Vec<String> = spec
        .fields
        .iter()
        .map(|f| format!("{}=[{}, {}]", f.field, f.min, f.max))
        .collect();
    eprintln!(
        "generated {} scenario(s) into {dir} ({} sampling over {}); run them with \
         `wsnem run {dir}`",
        manifest.files.len(),
        spec.method.name(),
        axes.join(", ")
    );
    Ok(())
}

/// The canonical CPU state labels, in [`wsnem_energy::CpuState::index`]
/// order — also the order of `StateFractions::as_array`.
const STATE_LABELS: [&str; 4] = ["standby", "powerup", "idle", "active"];

fn cmd_trace(args: &[String]) -> Result<(), String> {
    use wsnem_obs::{StateTimeline, Tee, TraceWriter};

    let mut file: Option<String> = None;
    let mut builtin_name: Option<String> = None;
    let mut backend = "des".to_owned();
    let mut out_path: Option<String> = None;
    let mut limit: Option<usize> = None;
    let mut sample: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => builtin_name = Some(required(&mut it, "--builtin <NAME>")?),
            "--backend" => backend = required(&mut it, "--backend <B>")?,
            "--out" | "-o" => out_path = Some(required(&mut it, "--out <FILE>")?),
            "--limit" => {
                let v = required(&mut it, "--limit <N>")?;
                limit = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| format!("--limit expects a positive integer, got `{v}`"))?,
                );
            }
            "--sample" => {
                let v = required(&mut it, "--sample <N>")?;
                sample =
                    Some(v.parse().ok().filter(|&n: &usize| n >= 1).ok_or_else(|| {
                        format!("--sample expects a positive integer, got `{v}`")
                    })?);
            }
            "--seed" => {
                let v = required(&mut it, "--seed <N>")?;
                seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed expects an integer, got `{v}`"))?,
                );
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            f if file.is_none() => file = Some(f.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let scenario = resolve_scenario(file, builtin_name, "trace")?;
    let cpu = scenario.cpu;
    let seed = seed.unwrap_or(cpu.master_seed);
    // The trace covers one replication from time zero with no warm-up
    // truncation, so the per-state sojourn fractions accumulated from the
    // stream reproduce the reported time-in-state split exactly.
    let mut tracer = TraceWriter::new(Vec::new());
    if let Some(n) = limit {
        tracer = tracer.with_limit(n);
    }
    if let Some(n) = sample {
        tracer = tracer.with_sampling(n);
    }
    let mut rng = wsnem_stats::rng::Xoshiro256PlusPlus::new(seed);

    let (bytes, summary) = match backend.as_str() {
        "des" => {
            tracer = tracer.with_state_labels(STATE_LABELS.map(str::to_owned).to_vec());
            let params = wsnem_des::CpuSimParams {
                service: wsnem_stats::dist::Dist::Exponential { rate: cpu.mu },
                power_down_threshold: cpu.power_down_threshold,
                power_up_delay: cpu.power_up_delay,
                horizon: cpu.horizon,
                warmup: 0.0,
                max_queue: None,
            };
            let sim = wsnem_des::CpuDes::new(params, wsnem_des::Workload::open_poisson(cpu.lambda))
                .map_err(|e| e.to_string())?;
            let mut obs = Tee::new(tracer, StateTimeline::new());
            let report = sim.run_observed(&mut rng, &mut obs);
            let Tee {
                a: tracer,
                b: timeline,
            } = obs;
            let mut summary = format!(
                "traced `{}` on the des kernel: horizon {} s, seed {seed}, {} record(s)\n",
                scenario.name,
                cpu.horizon,
                tracer.records_written()
            );
            let reported = report.fractions.as_array();
            for (i, label) in STATE_LABELS.iter().enumerate() {
                summary.push_str(&format!(
                    "  state {label:<8} trace {:.9}  report {:.9}\n",
                    timeline.fraction(i as u8),
                    reported[i]
                ));
            }
            (tracer.finish().map_err(|e| e.to_string())?, summary)
        }
        "petri" => {
            let (net, handles) = wsnem_core::build_cpu_edspn(
                cpu.lambda,
                cpu.mu,
                cpu.power_down_threshold,
                cpu.power_up_delay,
            )
            .map_err(|e| e.to_string())?;
            let labels: Vec<String> = net
                .transitions()
                .map(|t| net.transition_name(t).to_owned())
                .collect();
            tracer = tracer.with_transition_labels(labels);
            let rewards = wsnem_core::state_rewards(&handles);
            let cfg = wsnem_petri::SimConfig {
                horizon: cpu.horizon,
                warmup: 0.0,
                ..wsnem_petri::SimConfig::default()
            };
            let out = wsnem_petri::simulate_observed(&net, &cfg, &rewards, &mut rng, &mut tracer)
                .map_err(|e| e.to_string())?;
            let mut summary = format!(
                "traced `{}` on the petri kernel: horizon {} s, seed {seed}, {} record(s)\n",
                scenario.name,
                cpu.horizon,
                tracer.records_written()
            );
            for (i, label) in STATE_LABELS.iter().enumerate() {
                summary.push_str(&format!(
                    "  state {label:<8} report {:.9}\n",
                    out.reward_means[i]
                ));
            }
            (tracer.finish().map_err(|e| e.to_string())?, summary)
        }
        other => return Err(format!("unknown backend `{other}` (expected des or petri)")),
    };

    match &out_path {
        None => out(std::str::from_utf8(&bytes).map_err(|e| e.to_string())?),
        Some(path) => std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?,
    }
    eprint!("{summary}");
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut o = parse_run_options(args)?;
    if o.format != "summary" {
        return Err("profile has no --format; its output is the timing table".into());
    }
    if o.out.is_some() {
        return Err("profile prints to stdout; redirect it instead of --out".into());
    }
    // The profile table is the output; keep stderr quiet unless asked.
    o.quiet = !o.verbose;
    if o.distributed.is_some() {
        return Err(
            "profile times in-process workers; --distributed belongs to `wsnem run`".into(),
        );
    }
    let g = gather_scenarios(&o, "profile")?;
    let (results, metrics, cache_stats, _) = run_with_progress(&g, &o)?;
    let scenarios = &g.scenarios;

    outln!(
        "  {:<28} {:>9} {:>9} {:>9} {:>9}  solver seconds (base point)",
        "scenario",
        "base s",
        "sweep s",
        "net s",
        "total s"
    );
    let mut failures = Vec::new();
    for (s, r) in scenarios.iter().zip(&results) {
        match r {
            Err(e) => failures.push(format!("{}: {e}", s.name)),
            Ok(report) => {
                let p = report.phase_seconds;
                let solvers: Vec<String> = report
                    .backends
                    .iter()
                    .map(|b| format!("{} {:.4}", b.backend, b.eval_seconds))
                    .collect();
                outln!(
                    "  {:<28} {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {}",
                    report.scenario,
                    p.base_seconds,
                    p.sweep_seconds,
                    p.network_seconds,
                    report.elapsed_seconds,
                    solvers.join(", ")
                );
            }
        }
    }
    outln!(
        "{}",
        batch_line(&metrics, g.any_cached().then_some(&cache_stats), None)
    );
    if !failures.is_empty() {
        return Err(format!(
            "{} of {} scenario(s) failed:\n  {}",
            failures.len(),
            scenarios.len(),
            failures.join("\n  ")
        ));
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let mut file: Option<String> = None;
    let mut builtin_name: Option<String> = None;
    let mut dirs: Vec<String> = Vec::new();
    let mut format = "summary".to_owned();
    let mut out_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut quick = false;
    let mut no_check = false;
    let mut tiered = false;
    let mut max_delta_pp: Option<f64> = None;
    let mut scenario_timeout: Option<f64> = None;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => builtin_name = Some(required(&mut it, "--builtin <NAME>")?),
            "--scenario-timeout" => {
                let v = required(&mut it, "--scenario-timeout <SECS>")?;
                scenario_timeout = Some(parse_seconds("--scenario-timeout", &v)?);
            }
            "--strict" => strict = true,
            "--all-files" => dirs.push(required(&mut it, "--all-files <DIR>")?),
            "--format" => format = required(&mut it, "--format <FMT>")?,
            "--out" | "-o" => out_path = Some(required(&mut it, "--out <FILE>")?),
            "--quick" => quick = true,
            "--no-check" => no_check = true,
            "--tiered" => tiered = true,
            "--threads" => {
                let v = required(&mut it, "--threads <N>")?;
                threads =
                    Some(v.parse().ok().filter(|&n: &usize| n >= 1).ok_or_else(|| {
                        format!("--threads expects a positive integer, got `{v}`")
                    })?);
            }
            "--max-delta-pp" => {
                let v = required(&mut it, "--max-delta-pp <PP>")?;
                max_delta_pp =
                    Some(v.parse().ok().filter(|x: &f64| *x > 0.0).ok_or_else(|| {
                        format!("--max-delta-pp expects a positive number, got `{v}`")
                    })?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            f if file.is_none() => file = Some(f.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    // A directory positional means the same as --all-files.
    if let Some(f) = &file {
        if Path::new(f).is_dir() {
            dirs.insert(0, file.take().unwrap());
        }
    }
    let mut scenarios: Vec<Scenario> = Vec::new();
    if !dirs.is_empty() {
        if file.is_some() || builtin_name.is_some() {
            return Err(
                "pass either a scenario file / --builtin <NAME> or directories, not both".into(),
            );
        }
        for dir in &dirs {
            for (_, s) in parse_dir(dir)? {
                if let Some(prev) = scenarios.iter().find(|p| p.name == s.name) {
                    return Err(format!(
                        "duplicate scenario `{}` across compared directories",
                        prev.name
                    ));
                }
                scenarios.push(s);
            }
        }
    } else {
        // Files parse without validating, so the preflight below can turn
        // every semantic problem into a coded diagnostic.
        scenarios.push(match (file, builtin_name) {
            (Some(_), Some(_)) => {
                return Err("pass either a scenario file or --builtin <NAME>, not both".into())
            }
            (None, None) => {
                return Err("compare expects a scenario file or --builtin <NAME>".into())
            }
            (Some(f), None) => files::parse(&f).map_err(|e| e.to_string())?,
            (None, Some(n)) => builtin::find(&n).map_err(|e| e.to_string())?,
        });
    }
    if !no_check {
        preflight(&scenarios, false)?;
    }
    if quick {
        for scenario in &mut scenarios {
            // Slightly larger smoke budget than `run --quick`: the matrix
            // gates on 2 pp agreement, which 2 replications of 300 s cannot
            // promise.
            scenario.cpu = scenario
                .cpu
                .with_replications(4)
                .with_horizon(1500.0)
                .with_warmup(scenario.cpu.warmup.clamp(50.0, 100.0));
            if let Some(sweep) = &mut scenario.sweep {
                sweep.values.truncate(2);
            }
        }
    }

    let mut reports: Vec<wsnem_scenario::CompareReport> = Vec::new();
    let mut timeouts = 0usize;
    for scenario in &scenarios {
        let registry = wsnem_scenario::global_registry();
        // The same wall-clock watchdog `run --scenario-timeout` applies per
        // scenario: a point that exceeds it is skipped with a coded
        // diagnostic (an error under --strict) instead of hanging the
        // matrix.
        let report = match scenario_timeout {
            None => {
                if tiered {
                    wsnem_scenario::compare_scenario_tiered(scenario, registry, threads)
                } else {
                    wsnem_scenario::compare_scenario_with(scenario, registry, threads)
                }
            }
            Some(seconds) => {
                let s = scenario.clone();
                wsnem_scenario::call_with_timeout(seconds, move || {
                    let registry = wsnem_scenario::global_registry();
                    if tiered {
                        wsnem_scenario::compare_scenario_tiered(&s, registry, threads)
                    } else {
                        wsnem_scenario::compare_scenario_with(&s, registry, threads)
                    }
                })
                .and_then(|r| r)
            }
        };
        match report {
            Ok(report) => reports.push(report),
            Err(wsnem_scenario::ScenarioError::Timeout { seconds }) => {
                timeouts += 1;
                eprintln!(
                    "{}",
                    wsnem_analysis::lints::SCENARIO_TIMEOUT.at(
                        wsnem_analysis::Location::scenario(&scenario.name),
                        format!(
                            "exceeded the {seconds} s wall-clock watchdog; \
                             its matrix was skipped"
                        )
                    )
                );
            }
            Err(e) => return Err(format!("{}: {e}", scenario.name)),
        }
    }
    if reports.is_empty() {
        return Err(format!(
            "every scenario ({timeouts}) hit the --scenario-timeout watchdog; nothing to compare"
        ));
    }

    // Directory comparisons merge into one document: concatenated
    // summaries, a JSON array, or one CSV header over every matrix's rows
    // (sorted file order). A single scenario keeps the historical
    // single-object JSON shape.
    let rendered = match format.as_str() {
        "summary" => {
            let mut s = String::new();
            for (i, report) in reports.iter().enumerate() {
                if i > 0 {
                    s.push('\n');
                }
                s.push_str(&report.summary());
            }
            s
        }
        "json" => {
            let mut s = if reports.len() == 1 {
                serde_json::to_string_pretty(&reports[0]).map_err(|e| e.to_string())?
            } else {
                serde_json::to_string_pretty(&reports).map_err(|e| e.to_string())?
            };
            s.push('\n');
            s
        }
        "csv" => {
            let mut s = String::from(wsnem_scenario::CompareReport::CSV_HEADER);
            s.push('\n');
            for report in &reports {
                for row in report.csv_rows() {
                    s.push_str(&row);
                    s.push('\n');
                }
            }
            s
        }
        other => {
            return Err(format!(
                "unknown format `{other}` (expected summary, json or csv)"
            ))
        }
    };
    match &out_path {
        None => out(&rendered),
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {} comparison matrix(es) to {path} ({format} format)",
                reports.len()
            );
        }
    }

    if let Some(tol) = max_delta_pp {
        let worst = reports
            .iter()
            .max_by(|a, b| a.max_mean_abs_delta_pp.total_cmp(&b.max_mean_abs_delta_pp))
            .expect("at least one comparison report");
        if worst.max_mean_abs_delta_pp > tol {
            return Err(format!(
                "comparison matrix for `{}` exceeds tolerance: max mean |Δ| = {:.3} pp > {tol} pp",
                worst.scenario, worst.max_mean_abs_delta_pp
            ));
        }
        eprintln!(
            "max mean |Δ| = {:.3} pp within tolerance {tol} pp",
            worst.max_mean_abs_delta_pp
        );
    }
    if timeouts > 0 && strict {
        return Err(format!(
            "{timeouts} scenario(s) hit the --scenario-timeout watchdog (--strict)"
        ));
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    use wsnem_analysis::{self as analysis, Level, LintConfig};

    fn set(config: &mut LintConfig, lint: &str, level: Level) -> Result<(), String> {
        // `-D warnings` is the blanket escalation switch, rustc-style.
        if lint.eq_ignore_ascii_case("warnings") {
            if level == Level::Deny {
                config.deny_warnings = true;
                return Ok(());
            }
            return Err("`warnings` is a blanket switch: it only combines with -D/--deny".into());
        }
        config.set(lint, level)
    }

    let mut paths: Vec<String> = Vec::new();
    let mut builtins: Vec<String> = Vec::new();
    let mut all = false;
    let mut format = "human".to_owned();
    let mut config = LintConfig::default();
    let mut only_schema = false;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--only-schema" => only_schema = true,
            "--verbose" | "-v" => verbose = true,
            "--builtin" => builtins.push(required(&mut it, "--builtin <NAME>")?),
            "--format" => format = required(&mut it, "--format <FMT>")?,
            "-W" | "--warn" => set(&mut config, &required(&mut it, "-W <LINT>")?, Level::Warn)?,
            "-D" | "--deny" => set(&mut config, &required(&mut it, "-D <LINT>")?, Level::Deny)?,
            "-A" | "--allow" => set(&mut config, &required(&mut it, "-A <LINT>")?, Level::Allow)?,
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            p => paths.push(p.to_owned()),
        }
    }
    if !matches!(format.as_str(), "human" | "json") {
        return Err(format!(
            "unknown format `{format}` (expected human or json)"
        ));
    }
    if paths.is_empty() && builtins.is_empty() && !all {
        return Err(
            "nothing to check: pass scenario files, directories, --builtin <name> or --all".into(),
        );
    }

    let registry = wsnem_scenario::global_registry();
    let opts = analysis::CheckOptions { only_schema };
    let mut diagnostics: Vec<analysis::Diagnostic> = Vec::new();
    let mut checked = 0usize;
    if all {
        for s in builtin::all() {
            checked += 1;
            diagnostics.extend(analysis::check_scenario(&s, registry, opts));
        }
    }
    for name in &builtins {
        let s = builtin::find(name).map_err(|e| e.to_string())?;
        checked += 1;
        diagnostics.extend(analysis::check_scenario(&s, registry, opts));
    }
    // Directory targets check every file a fleet run would pick up, plus
    // any raw `*.net.json` net specs (`check_file` dispatches on the
    // suffix).
    for path in &paths {
        if Path::new(path).is_dir() {
            for file in fleet::discover(path).map_err(|e| e.to_string())? {
                checked += 1;
                diagnostics.extend(analysis::check_file(&file, registry, opts));
            }
        } else {
            checked += 1;
            diagnostics.extend(analysis::check_file(Path::new(path), registry, opts));
        }
    }

    let resolved = analysis::resolve(diagnostics, &config);
    let counts = analysis::counts(&resolved);
    if format == "json" {
        // JSON carries everything; severity filtering is the consumer's
        // call.
        #[derive(serde::Serialize)]
        struct CheckOutput {
            checked: usize,
            counts: analysis::Counts,
            diagnostics: Vec<analysis::Diagnostic>,
        }
        let mut s = serde_json::to_string_pretty(&CheckOutput {
            checked,
            counts,
            diagnostics: resolved,
        })
        .map_err(|e| e.to_string())?;
        s.push('\n');
        out(&s);
    } else {
        for d in &resolved {
            if verbose || d.severity >= analysis::Severity::Warning {
                outln!("{d}");
            }
        }
        outln!(
            "checked {checked} target(s): {} error(s), {} warning(s), {} info(s)",
            counts.errors,
            counts.warnings,
            counts.infos
        );
    }
    if counts.errors > 0 {
        return Err(format!("check failed with {} error(s)", counts.errors));
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("validate expects at least one scenario file".into());
    }
    // `validate` is `check --only-schema` with fixed reporting: every
    // error-severity diagnostic prints, clean files get one ok-line, and
    // any invalid file makes the exit status non-zero.
    let registry = wsnem_scenario::global_registry();
    let config = wsnem_analysis::LintConfig::default();
    let opts = wsnem_analysis::CheckOptions { only_schema: true };
    let mut bad = 0usize;
    for file in args {
        let diags = wsnem_analysis::resolve(
            wsnem_analysis::check_file(Path::new(file), registry, opts),
            &config,
        );
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == wsnem_analysis::Severity::Error)
            .collect();
        if errors.is_empty() {
            if file.ends_with(wsnem_analysis::engine::NET_SPEC_SUFFIX) {
                outln!("{file}: ok (net spec)");
            } else {
                let name = files::parse(file).map(|s| s.name).unwrap_or_default();
                outln!("{file}: ok (scenario `{name}`)");
            }
        } else {
            bad += 1;
            for d in errors {
                outln!("{d}");
            }
        }
    }
    if bad > 0 {
        Err(format!("{bad} of {} file(s) invalid", args.len()))
    } else {
        Ok(())
    }
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let mut name: Option<String> = None;
    let mut format = "toml".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => format = required(&mut it, "--format <FMT>")?,
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            n if name.is_none() => name = Some(n.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let name = name.ok_or("export expects a built-in scenario name")?;
    let scenario = builtin::find(&name).map_err(|e| e.to_string())?;
    let format = match format.as_str() {
        "toml" => FileFormat::Toml,
        "json" => FileFormat::Json,
        other => return Err(format!("unknown format `{other}` (expected toml or json)")),
    };
    let text = files::to_string(&scenario, format).map_err(|e| e.to_string())?;
    out(&text);
    if !text.ends_with('\n') {
        outln!();
    }
    Ok(())
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let mut file: Option<String> = None;
    let mut builtin_name: Option<String> = None;
    let mut limit = DEFAULT_SUMMARY_NODE_LIMIT;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => builtin_name = Some(required(&mut it, "--builtin <NAME>")?),
            "--limit" => {
                let v = required(&mut it, "--limit <N>")?;
                limit = v
                    .parse()
                    .map_err(|_| format!("--limit expects a non-negative integer, got `{v}`"))?;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            f if file.is_none() => file = Some(f.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let scenario = resolve_scenario(file, builtin_name, "topology")?;
    let spec = scenario
        .network
        .as_ref()
        .ok_or_else(|| format!("scenario `{}` declares no network", scenario.name))?;
    let profile = scenario.profile.build().map_err(|e| e.to_string())?;
    let battery = scenario.battery.build().map_err(|e| e.to_string())?;
    if spec.template.is_some() {
        return topology_template(&scenario, spec, &profile, &battery, limit);
    }
    let net = spec
        .build_network(scenario.cpu, &profile, &battery)
        .map_err(|e| e.to_string())?;
    net.validate()
        .map_err(|e| format!("scenario `{}`: invalid topology: {e}", scenario.name))?;
    let routing = net.routing().map_err(|e| e.to_string())?;
    let (depths, forwarded, sizes) = (&routing.depths, &routing.forwarded, &routing.subtree_sizes);

    let shape = spec.topology.as_ref().map(|t| t.label()).unwrap_or("star");
    outln!(
        "scenario `{}`: {shape} topology, {} node(s), max depth {}, sink inflow {:.3} pkt/s\n",
        scenario.name,
        net.nodes.len(),
        depths.iter().max().copied().unwrap_or(0),
        net.sink_arrival_pkts_s()
    );
    outln!(
        "  {:<16} {:<16} {:>5} {:>8} {:>12} {:>12} {:>12}  {:<20}",
        "node",
        "next hop",
        "depth",
        "subtree",
        "own tx/s",
        "fwd rx/s",
        "cpu load/s",
        "radio (duty)"
    );
    for (i, node) in net.nodes.iter().take(limit).enumerate() {
        let next = match net.next_hop[i] {
            wsnem_scenario::NextHop::Sink => "(sink)".to_owned(),
            wsnem_scenario::NextHop::Node(j) => net.nodes[j].name.clone(),
        };
        let radio = format!(
            "{} ({:.2}%)",
            spec.radio_spec_for(i).label(),
            100.0 * node.radio.duty_cycle()
        );
        outln!(
            "  {:<16} {:<16} {:>5} {:>8} {:>12.3} {:>12.3} {:>12.3}  {:<20}",
            node.name,
            next,
            depths[i],
            sizes[i],
            node.own_tx_rate(),
            forwarded[i],
            node.event_rate + forwarded[i],
            radio
        );
    }
    if net.nodes.len() > limit {
        outln!(
            "  … and {} more node(s); use --limit to show more",
            net.nodes.len() - limit
        );
    }
    if let Some((i, _)) = forwarded
        .iter()
        .enumerate()
        .filter(|(_, f)| **f > 0.0)
        .max_by(|a, b| a.1.total_cmp(b.1))
    {
        // This inspector runs no model, so it can only rank relays by
        // load; the *lifetime* bottleneck relay (MAC-sensitive with
        // per-node radio overrides) comes from `wsnem run`.
        outln!(
            "\n  heaviest relay: `{}` forwards {:.3} pkt/s for {} node(s) \
             (lifetime bottleneck: see `wsnem run`)",
            net.nodes[i].name,
            forwarded[i],
            sizes[i] - 1
        );
    }
    Ok(())
}

/// `wsnem topology` for a template-declared network: routing comes off the
/// structure-of-arrays core, so a million-node topology inspects without
/// ever materializing per-node structs.
fn topology_template(
    scenario: &Scenario,
    spec: &wsnem_scenario::NetworkSpec,
    profile: &wsnem_scenario::PowerProfile,
    battery: &wsnem_scenario::Battery,
    limit: usize,
) -> Result<(), String> {
    let soa = spec
        .build_soa(scenario.cpu, profile, battery)
        .map_err(|e| e.to_string())?;
    let routing = soa.routing().map_err(|e| e.to_string())?;
    let (depths, forwarded, sizes) = (&routing.depths, &routing.forwarded, &routing.subtree_sizes);
    let sink_inflow: f64 = (0..soa.len())
        .filter(|&i| soa.parent[i] == wsnem_scenario::SINK)
        .map(|i| soa.event_rate[i] * soa.tx_per_event[i] + forwarded[i])
        .sum();
    let shape = spec.topology.as_ref().map(|t| t.label()).unwrap_or("star");
    let radio = format!(
        "{} ({:.2}%)",
        spec.radio
            .as_ref()
            .map(|r| r.label().to_owned())
            .unwrap_or_else(|| wsnem_scenario::DEFAULT_RADIO_PRESET.to_owned()),
        100.0 * soa.radio.duty_cycle()
    );
    outln!(
        "scenario `{}`: {shape} topology (template), {} node(s), max depth {}, \
         sink inflow {:.3} pkt/s\n",
        scenario.name,
        soa.len(),
        depths.iter().max().copied().unwrap_or(0),
        sink_inflow
    );
    outln!(
        "  {:<16} {:<16} {:>5} {:>8} {:>12} {:>12} {:>12}  {:<20}",
        "node",
        "next hop",
        "depth",
        "subtree",
        "own tx/s",
        "fwd rx/s",
        "cpu load/s",
        "radio (duty)"
    );
    for i in 0..soa.len().min(limit) {
        let next = if soa.parent[i] == wsnem_scenario::SINK {
            "(sink)".to_owned()
        } else {
            soa.name(soa.parent[i] as usize)
        };
        outln!(
            "  {:<16} {:<16} {:>5} {:>8} {:>12.3} {:>12.3} {:>12.3}  {:<20}",
            soa.name(i),
            next,
            depths[i],
            sizes[i],
            soa.event_rate[i] * soa.tx_per_event[i],
            forwarded[i],
            soa.event_rate[i] + forwarded[i],
            radio
        );
    }
    if soa.len() > limit {
        outln!(
            "  … and {} more node(s); use --limit to show more",
            soa.len() - limit
        );
    }
    if let Some((i, _)) = forwarded
        .iter()
        .enumerate()
        .filter(|(_, f)| **f > 0.0)
        .max_by(|a, b| a.1.total_cmp(b.1))
    {
        outln!(
            "\n  heaviest relay: `{}` forwards {:.3} pkt/s for {} node(s) \
             (lifetime bottleneck: see `wsnem run`)",
            soa.name(i),
            forwarded[i],
            sizes[i] - 1
        );
    }
    Ok(())
}

fn cmd_radio(args: &[String]) -> Result<(), String> {
    use wsnem_scenario::{Battery, RadioSpec};

    let mut file: Option<String> = None;
    let mut builtin_name: Option<String> = None;
    let mut preset: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => builtin_name = Some(required(&mut it, "--builtin <NAME>")?),
            "--preset" => preset = Some(required(&mut it, "--preset <NAME>")?),
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            f if file.is_none() => file = Some(f.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    // Collect (role, spec) pairs plus the battery that sizes the lifetime
    // column: a bare preset inspects on two AA cells; a scenario inspects
    // its own network's specs on its own battery.
    let (specs, battery): (Vec<(String, RadioSpec)>, Battery) = match (preset, file, builtin_name) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
            return Err("pass either --preset <NAME> or a scenario, not both".into())
        }
        (Some(name), None, None) => (
            vec![("preset".to_owned(), RadioSpec::Preset(name))],
            Battery::two_aa(),
        ),
        (None, None, None) => {
            return Err(
                "radio expects a scenario file, --builtin <NAME> or --preset <NAME> \
                 (e.g. `wsnem radio --preset cc2420-class`)"
                    .into(),
            )
        }
        (None, f, b) => {
            let scenario = resolve_scenario(f, b, "radio")?;
            let battery = scenario.battery.build().map_err(|e| e.to_string())?;
            let mut specs: Vec<(String, RadioSpec)> = Vec::new();
            match &scenario.network {
                None => specs.push((
                    "default (scenario declares no network)".to_owned(),
                    RadioSpec::default(),
                )),
                Some(net) => {
                    specs.push((
                        if net.radio.is_some() {
                            "network default".to_owned()
                        } else {
                            "network default (implicit)".to_owned()
                        },
                        net.radio.clone().unwrap_or_default(),
                    ));
                    for n in &net.nodes {
                        if let Some(r) = &n.radio {
                            // One block per distinct override; name every
                            // node that runs it.
                            match specs.iter_mut().find(|(_, s)| s == r) {
                                Some((role, _)) => role.push_str(&format!(", node `{}`", n.name)),
                                None => {
                                    specs.push((format!("node `{}` override", n.name), r.clone()))
                                }
                            }
                        }
                    }
                }
            }
            outln!(
                "scenario `{}`: {} distinct radio spec(s)\n",
                scenario.name,
                specs.len()
            );
            (specs, battery)
        }
    };

    for (i, (role, spec)) in specs.iter().enumerate() {
        if i > 0 {
            outln!();
        }
        let model = spec.lower().map_err(|e| e.to_string())?;
        outln!("radio `{}` — {role}", spec.label());
        outln!(
            "  power:  sleep {:.3} mW   listen/rx {:.3} mW   tx {:.3} mW",
            model.sleep_mw,
            model.listen_mw,
            model.tx_mw
        );
        outln!(
            "  timing: wake-up period {:.4} s, listen window {:.4} s  ->  duty cycle {:.2}%",
            model.period_s,
            model.listen_s,
            100.0 * model.duty_cycle()
        );
        outln!(
            "  airtime/packet: tx {:.4} s, rx {:.4} s (MAC overhead included)",
            model.tx_airtime_s,
            model.rx_airtime_s
        );
        outln!();
        outln!(
            "  {:>14}  {:>7} {:>7} {:>7} {:>7}  {:>10}  {:>16}",
            "pkt/s (tx=rx)",
            "tx%",
            "rx%",
            "listen%",
            "sleep%",
            "mean mW",
            "lifetime (days)"
        );
        for rate in [0.0, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0] {
            let split = model.time_split(rate, rate);
            let power = model.mean_power_mw(rate, rate);
            outln!(
                "  {:>14} {:>7.2} {:>7.2} {:>8.2} {:>7.2}  {:>10.3}  {:>16.1}",
                rate,
                100.0 * split.tx,
                100.0 * split.rx,
                100.0 * split.listen,
                100.0 * split.sleep,
                power,
                battery.lifetime_days(power)
            );
        }
        outln!(
            "  (lifetime = radio draw alone on a {:.0} mAh / {:.1} V battery; CPU not \
             included)",
            battery.capacity_mah,
            battery.voltage_v
        );
    }
    Ok(())
}

fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        if !line.is_empty() && line.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut line));
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(word);
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_name_short_passes_through() {
        assert_eq!(truncate_name("paper-defaults", 32), "paper-defaults");
        assert_eq!(truncate_name("", 32), "");
        // Exactly at the limit: unchanged, no ellipsis.
        let exact = "x".repeat(32);
        assert_eq!(truncate_name(&exact, 32), exact);
    }

    #[test]
    fn truncate_name_cuts_long_names_with_ellipsis() {
        let long = "fleet-scenario-with-a-very-long-generated-name-0042";
        let cut = truncate_name(long, 32);
        assert_eq!(cut.chars().count(), 32);
        assert!(cut.ends_with('…'));
        assert!(long.starts_with(&cut[..cut.len() - '…'.len_utf8()]));
    }

    #[test]
    fn truncate_name_counts_chars_not_bytes() {
        // Multi-byte names must truncate on character boundaries.
        let name = "é".repeat(40);
        let cut = truncate_name(&name, 32);
        assert_eq!(cut.chars().count(), 32);
        assert!(cut.ends_with('…'));
    }

    #[test]
    fn progress_line_has_fixed_name_column() {
        let short = progress_line(1, 10, "tiny", 1.0, 9.0);
        let long = progress_line(
            2,
            10,
            "fleet-scenario-with-a-very-long-generated-name-0042",
            2.0,
            8.0,
        );
        // Same [done/total] digit counts ⇒ same display width: the long
        // name is truncated into the same fixed column the short one pads.
        assert_eq!(short.chars().count(), long.chars().count());
        assert!(long.contains('…'));
        assert!(short.contains("[1/10] tiny"));
    }

    #[test]
    fn batch_line_appends_cache_counts_only_when_cached() {
        let m = BatchMetrics {
            scenarios: 10,
            workers: 4,
            wall_seconds: 2.0,
            busy_seconds: 6.0,
            utilization: 0.75,
            scenarios_per_second: 5.0,
        };
        let plain = batch_line(&m, None, None);
        assert!(!plain.contains("cache"));
        let stats = CacheStats { hits: 7, misses: 3 };
        let cached = batch_line(&m, Some(&stats), None);
        assert!(cached.contains("cache: 7 hit(s), 3 miss(es)"), "{cached}");
    }

    #[test]
    fn batch_line_appends_distribution_counters_after_a_distributed_run() {
        let m = BatchMetrics {
            scenarios: 8,
            workers: 1,
            wall_seconds: 2.0,
            busy_seconds: 0.5,
            utilization: 0.25,
            scenarios_per_second: 4.0,
        };
        let dist = DistStats {
            workers_seen: 2,
            shards_total: 8,
            shards_remote: 6,
            shards_local: 2,
            reassigned: 3,
            fell_back_local: true,
            ..DistStats::default()
        };
        let line = batch_line(&m, None, Some(&dist));
        assert!(
            line.contains("distributed: 2 worker(s), 6 remote + 2 local shard(s), 3 reassigned"),
            "{line}"
        );
        assert!(line.ends_with("local fallback"), "{line}");
        let clean = batch_line(&m, None, Some(&DistStats::default()));
        assert!(!clean.contains("fallback"), "{clean}");
    }

    #[test]
    fn parse_field_spec_full_and_partial() {
        let f = parse_field_spec("lambda=0.25:0.75:5").unwrap();
        assert_eq!(f.field, GenField::Lambda);
        assert_eq!((f.min, f.max, f.points), (0.25, 0.75, Some(5)));
        let f = parse_field_spec("node-count=4:16").unwrap();
        assert_eq!(f.field, GenField::NodeCount);
        assert_eq!(f.points, None);

        assert!(parse_field_spec("lambda").is_err());
        assert!(parse_field_spec("bogus=0:1")
            .unwrap_err()
            .contains("lambda"));
        assert!(parse_field_spec("lambda=0:1:2:3").is_err());
        assert!(parse_field_spec("lambda=a:b").is_err());
        assert!(parse_field_spec("lambda=0:1:-2").is_err());
    }
}
