//! A small, source-compatible subset of the `serde` API, implemented
//! in-workspace so the repository builds with **zero network access**.
//!
//! The real `serde` abstracts over serializer implementations with a visitor
//! architecture; this subset instead round-trips every type through one
//! self-describing [`Value`] tree, which `serde_json` and `toml` (the
//! in-workspace siblings) render and parse. The public surface used by this
//! workspace is identical to upstream serde:
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct P { x: f64, name: String }
//! ```
//!
//! Supported derive shapes: named-field structs, unit enum variants, newtype
//! variants and struct variants (externally tagged, like upstream serde's
//! default representation). Generic types are not supported by the derive.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing data tree — the interchange point between typed Rust
/// values and concrete formats (JSON, TOML).
///
/// Maps preserve insertion order so that serialized output is stable and
/// golden files are meaningful.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent/None.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered key → value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable description of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self {
            msg: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// Missing map field.
    pub fn missing_field(name: &str) -> Self {
        Self {
            msg: format!("missing field `{name}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch a required field from map entries (helper for derived code).
pub fn map_field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(name))
}

/// Fetch an optional field from map entries (helper for derived code):
/// missing keys and explicit nulls both deserialize as `None` for
/// `Option<T>` fields.
pub fn map_field_opt<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 && v > i64::MAX as i128 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(v as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => {
                        <$t>::try_from(f as i64)
                            .map_err(|_| Error::custom(format!("number {f} out of range for {}", stringify!($t))))
                    }
                    _ => Err(Error::expected("integer", v)),
                }?;
                Ok(out)
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self > i64::MAX as u64 {
            Value::UInt(*self)
        } else {
            Value::Int(*self as i64)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Int(i) if i >= 0 => Ok(i as u64),
            Value::Int(i) => Err(Error::custom(format!("integer {i} out of range for u64"))),
            Value::UInt(u) => Ok(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f < 2f64.powi(53) => Ok(f as u64),
            _ => Err(Error::expected("integer", v)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            // Non-finite floats serialize as strings in JSON (which has no
            // literal for them); accept the symmetric spellings here.
            Value::Str(ref s) => match s.as_str() {
                "Infinity" | "inf" | "+inf" => Ok(f64::INFINITY),
                "-Infinity" | "-inf" => Ok(f64::NEG_INFINITY),
                "NaN" | "nan" => Ok(f64::NAN),
                _ => Err(Error::expected("number", v)),
            },
            _ => Err(Error::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::expected("2-tuple", v))?;
        if s.len() != 2 {
            return Err(Error::expected("2-tuple", v));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn numeric_coercions() {
        // Integers read back as floats and vice versa (lossless cases only).
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::Float(4.0)).unwrap(), 4);
        assert!(u32::from_value(&Value::Float(4.5)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert_eq!(u64::from_value(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
    }

    #[test]
    fn nonfinite_floats_via_strings() {
        assert!(f64::from_value(&Value::Str("Infinity".into()))
            .unwrap()
            .is_infinite());
        assert!(f64::from_value(&Value::Str("NaN".into())).unwrap().is_nan());
        assert!(f64::from_value(&Value::Str("pony".into())).is_err());
    }

    #[test]
    fn option_null_handling() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Float(2.0)).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn map_helpers() {
        let m = vec![("a".to_string(), Value::Int(1))];
        assert_eq!(map_field(&m, "a").unwrap(), &Value::Int(1));
        assert!(map_field(&m, "b").is_err());
        assert!(map_field_opt(&m, "b").is_none());
        let v = Value::Map(m);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.kind(), "map");
    }
}
