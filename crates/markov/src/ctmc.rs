//! Sparse continuous-time Markov chains.
//!
//! A CTMC is stored in compressed sparse row (CSR) *and* column (CSC) form:
//! the row form drives transient uniformization (π ← πP needs out-edges),
//! the column form drives Gauss–Seidel steady-state sweeps (π_j needs
//! in-edges). Both are built once; solvers allocate only their iteration
//! vectors.

use crate::error::MarkovError;

/// Incremental CTMC constructor. Duplicate `(from, to)` rates accumulate.
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    n: usize,
    triplets: Vec<(u32, u32, f64)>,
}

impl CtmcBuilder {
    /// Builder for a chain with `n_states` states.
    pub fn new(n_states: usize) -> Self {
        Self {
            n: n_states,
            triplets: Vec::new(),
        }
    }

    /// Add transition rate `rate` from state `from` to state `to`.
    ///
    /// Zero rates are accepted and dropped; self-loops are rejected (they are
    /// meaningless in a CTMC generator).
    pub fn rate(&mut self, from: usize, to: usize, rate: f64) -> Result<&mut Self, MarkovError> {
        if from >= self.n {
            return Err(MarkovError::StateOutOfBounds {
                index: from,
                n_states: self.n,
            });
        }
        if to >= self.n {
            return Err(MarkovError::StateOutOfBounds {
                index: to,
                n_states: self.n,
            });
        }
        if !(rate >= 0.0) || !rate.is_finite() {
            return Err(MarkovError::InvalidRate { from, to, rate });
        }
        if from == to {
            return Err(MarkovError::InvalidRate { from, to, rate });
        }
        if rate > 0.0 {
            self.triplets.push((from as u32, to as u32, rate));
        }
        Ok(self)
    }

    /// Finalize into an immutable [`Ctmc`].
    pub fn build(mut self) -> Result<Ctmc, MarkovError> {
        if self.n == 0 {
            return Err(MarkovError::Empty);
        }
        // Sort by (from, to) and merge duplicates.
        self.triplets
            .sort_unstable_by_key(|&(f, t, _)| ((f as u64) << 32) | t as u64);
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(self.triplets.len());
        for (f, t, r) in self.triplets {
            if let Some(last) = merged.last_mut() {
                if last.0 == f && last.1 == t {
                    last.2 += r;
                    continue;
                }
            }
            merged.push((f, t, r));
        }

        let n = self.n;
        let mut row_ptr = vec![0usize; n + 1];
        for &(f, _, _) in &merged {
            row_ptr[f as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col: Vec<u32> = merged.iter().map(|&(_, t, _)| t).collect();
        let val: Vec<f64> = merged.iter().map(|&(_, _, r)| r).collect();

        let mut exit = vec![0.0f64; n];
        for &(f, _, r) in &merged {
            exit[f as usize] += r;
        }

        // CSC (incoming) structure.
        let mut col_ptr = vec![0usize; n + 1];
        for &(_, t, _) in &merged {
            col_ptr[t as usize + 1] += 1;
        }
        for i in 0..n {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut in_row = vec![0u32; merged.len()];
        let mut in_val = vec![0.0f64; merged.len()];
        let mut cursor = col_ptr.clone();
        for &(f, t, r) in &merged {
            let k = cursor[t as usize];
            in_row[k] = f;
            in_val[k] = r;
            cursor[t as usize] += 1;
        }

        Ok(Ctmc {
            n,
            row_ptr,
            col,
            val,
            col_ptr,
            in_row,
            in_val,
            exit,
        })
    }
}

/// Steady-state solution strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SteadyStateMethod {
    /// Dense Gaussian elimination with partial pivoting; exact up to
    /// floating-point. O(n³) — intended for n ≲ 2000.
    Dense,
    /// Gauss–Seidel sweeps on πQ = 0 with per-sweep normalization.
    GaussSeidel {
        /// Maximum sweeps before giving up.
        max_iter: usize,
        /// Convergence threshold on max residual |πQ|.
        tol: f64,
    },
    /// Uniformized power iteration π ← π(I + Q/Λ).
    Power {
        /// Maximum iterations.
        max_iter: usize,
        /// Convergence threshold on L1 change per iteration.
        tol: f64,
    },
    /// Dense for small chains, Gauss–Seidel otherwise.
    Auto,
}

/// An immutable CTMC generator matrix in CSR + CSC form.
#[derive(Debug, Clone)]
pub struct Ctmc {
    n: usize,
    // Outgoing (CSR): row i covers row_ptr[i]..row_ptr[i+1].
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    val: Vec<f64>,
    // Incoming (CSC): column j covers col_ptr[j]..col_ptr[j+1].
    col_ptr: Vec<usize>,
    in_row: Vec<u32>,
    in_val: Vec<f64>,
    exit: Vec<f64>,
}

impl Ctmc {
    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Number of (merged) non-zero transitions.
    pub fn n_transitions(&self) -> usize {
        self.val.len()
    }

    /// Total exit rate of a state.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.exit[state]
    }

    /// Iterate the outgoing transitions `(to, rate)` of `state`.
    pub fn outgoing(&self, state: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.row_ptr[state]..self.row_ptr[state + 1];
        self.col[r.clone()]
            .iter()
            .zip(&self.val[r])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Residual ‖πQ‖∞ — how far `pi` is from being stationary.
    pub fn residual(&self, pi: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for j in 0..self.n {
            let mut flow = -pi[j] * self.exit[j];
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                flow += pi[self.in_row[k] as usize] * self.in_val[k];
            }
            worst = worst.max(flow.abs());
        }
        worst
    }

    /// Solve for the stationary distribution πQ = 0, Σπ = 1.
    pub fn steady_state(&self, method: SteadyStateMethod) -> Result<Vec<f64>, MarkovError> {
        match method {
            SteadyStateMethod::Dense => self.steady_dense(),
            SteadyStateMethod::GaussSeidel { max_iter, tol } => self.steady_gs(max_iter, tol),
            SteadyStateMethod::Power { max_iter, tol } => self.steady_power(max_iter, tol),
            SteadyStateMethod::Auto => {
                if self.n <= 512 {
                    self.steady_dense()
                } else {
                    self.steady_gs(200_000, 1e-12)
                        .or_else(|_| self.steady_power(2_000_000, 1e-13))
                }
            }
        }
    }

    fn steady_dense(&self) -> Result<Vec<f64>, MarkovError> {
        let n = self.n;
        if n > 4096 {
            return Err(MarkovError::InvalidParameter {
                what: "Dense steady state",
                constraint: "n <= 4096 (use GaussSeidel/Power)",
                value: n as f64,
            });
        }
        if n == 1 {
            return Ok(vec![1.0]);
        }
        // Solve A x = b with A = Qᵀ, last row replaced by the normalization
        // Σ x = 1.
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = -self.exit[i]; // Qᵀ[i][i] = Q[i][i]
        }
        for from in 0..n {
            for k in self.row_ptr[from]..self.row_ptr[from + 1] {
                let to = self.col[k] as usize;
                a[to * n + from] += self.val[k]; // Qᵀ[to][from] = Q[from][to]
            }
        }
        for j in 0..n {
            a[(n - 1) * n + j] = 1.0;
        }
        let mut b = vec![0.0f64; n];
        b[n - 1] = 1.0;

        // Gaussian elimination with partial pivoting.
        for c in 0..n {
            let mut pivot = c;
            let mut best = a[c * n + c].abs();
            for r in (c + 1)..n {
                let v = a[r * n + c].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-300 {
                return Err(MarkovError::Reducible { state: c });
            }
            if pivot != c {
                for j in 0..n {
                    a.swap(c * n + j, pivot * n + j);
                }
                b.swap(c, pivot);
            }
            let d = a[c * n + c];
            for r in (c + 1)..n {
                let factor = a[r * n + c] / d;
                if factor == 0.0 {
                    continue;
                }
                for j in c..n {
                    a[r * n + j] -= factor * a[c * n + j];
                }
                b[r] -= factor * b[c];
            }
        }
        let mut x = vec![0.0f64; n];
        for r in (0..n).rev() {
            let mut s = b[r];
            for j in (r + 1)..n {
                s -= a[r * n + j] * x[j];
            }
            x[r] = s / a[r * n + r];
        }
        // Clamp tiny negatives from roundoff and renormalize.
        let mut total = 0.0;
        for v in &mut x {
            if *v < 0.0 {
                if *v < -1e-8 {
                    return Err(MarkovError::Reducible { state: 0 });
                }
                *v = 0.0;
            }
            total += *v;
        }
        if total <= 0.0 {
            return Err(MarkovError::Reducible { state: 0 });
        }
        for v in &mut x {
            *v /= total;
        }
        Ok(x)
    }

    fn steady_gs(&self, max_iter: usize, tol: f64) -> Result<Vec<f64>, MarkovError> {
        let n = self.n;
        // Absorbing states make the sweep division ill-defined.
        if let Some(s) = self.exit.iter().position(|&e| e <= 0.0) {
            if n > 1 {
                return Err(MarkovError::Reducible { state: s });
            }
            return Ok(vec![1.0]);
        }
        let mut pi = vec![1.0 / n as f64; n];
        for it in 0..max_iter {
            for j in 0..n {
                let mut inflow = 0.0;
                for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                    inflow += pi[self.in_row[k] as usize] * self.in_val[k];
                }
                pi[j] = inflow / self.exit[j];
            }
            let total: f64 = pi.iter().sum();
            if !(total > 0.0) || !total.is_finite() {
                return Err(MarkovError::NoConvergence {
                    iterations: it,
                    residual: f64::INFINITY,
                });
            }
            for v in &mut pi {
                *v /= total;
            }
            if it % 8 == 7 || it + 1 == max_iter {
                let res = self.residual(&pi);
                if res < tol {
                    return Ok(pi);
                }
            }
        }
        let res = self.residual(&pi);
        if res < tol * 10.0 {
            // Accept near-misses: Gauss–Seidel stalls at roundoff level on
            // stiff chains.
            return Ok(pi);
        }
        Err(MarkovError::NoConvergence {
            iterations: max_iter,
            residual: res,
        })
    }

    fn steady_power(&self, max_iter: usize, tol: f64) -> Result<Vec<f64>, MarkovError> {
        let n = self.n;
        let lambda = self
            .exit
            .iter()
            .cloned()
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE)
            * 1.02;
        let mut pi = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        for it in 0..max_iter {
            // next = pi (I + Q/Λ)
            for j in 0..n {
                next[j] = pi[j] * (1.0 - self.exit[j] / lambda);
            }
            for (from, &pf) in pi.iter().enumerate() {
                if pf == 0.0 {
                    continue;
                }
                for k in self.row_ptr[from]..self.row_ptr[from + 1] {
                    next[self.col[k] as usize] += pf * self.val[k] / lambda;
                }
            }
            let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pi, &mut next);
            if diff < tol {
                let total: f64 = pi.iter().sum();
                for v in &mut pi {
                    *v /= total;
                }
                return Ok(pi);
            }
            let _ = it;
        }
        Err(MarkovError::NoConvergence {
            iterations: max_iter,
            residual: self.residual(&pi),
        })
    }

    /// Transient distribution `p(t)` from initial distribution `p0` by
    /// uniformization, accurate to `tol` in L1.
    pub fn transient(&self, p0: &[f64], t: f64, tol: f64) -> Result<Vec<f64>, MarkovError> {
        if p0.len() != self.n {
            return Err(MarkovError::StateOutOfBounds {
                index: p0.len(),
                n_states: self.n,
            });
        }
        if !(t >= 0.0) || !t.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "transient time",
                constraint: ">= 0 and finite",
                value: t,
            });
        }
        let lambda = self
            .exit
            .iter()
            .cloned()
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE)
            * 1.02;
        // Split long horizons so e^{-Λτ} stays representable.
        let segments = ((lambda * t) / 200.0).ceil().max(1.0) as usize;
        let tau = t / segments as f64;
        let mut p = p0.to_vec();
        let seg_tol = tol / segments as f64;
        for _ in 0..segments {
            p = self.uniformization_step(&p, lambda, tau, seg_tol);
        }
        Ok(p)
    }

    fn uniformization_step(&self, p0: &[f64], lambda: f64, tau: f64, tol: f64) -> Vec<f64> {
        let n = self.n;
        let lt = lambda * tau;
        let mut weight = (-lt).exp(); // w_0
        let mut acc_weight = weight;
        let mut v = p0.to_vec(); // p0 Pᵏ
        let mut out: Vec<f64> = v.iter().map(|x| x * weight).collect();
        let mut next = vec![0.0f64; n];
        let mut k = 0usize;
        while acc_weight < 1.0 - tol && k < 100_000 {
            // v ← v P
            for j in 0..n {
                next[j] = v[j] * (1.0 - self.exit[j] / lambda);
            }
            for (from, &pf) in v.iter().enumerate() {
                if pf == 0.0 {
                    continue;
                }
                for idx in self.row_ptr[from]..self.row_ptr[from + 1] {
                    next[self.col[idx] as usize] += pf * self.val[idx] / lambda;
                }
            }
            std::mem::swap(&mut v, &mut next);
            k += 1;
            weight *= lt / k as f64;
            acc_weight += weight;
            for j in 0..n {
                out[j] += weight * v[j];
            }
        }
        // Renormalize the truncation remainder.
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for x in &mut out {
                *x /= total;
            }
        }
        out
    }

    /// Expected reward `Σ π_i r_i`.
    pub fn expected_reward(&self, pi: &[f64], rewards: &[f64]) -> f64 {
        pi.iter().zip(rewards).map(|(p, r)| p * r).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state chain: 0 --a--> 1, 1 --b--> 0; π = (b, a)/(a+b).
    fn two_state(a: f64, b: f64) -> Ctmc {
        let mut builder = CtmcBuilder::new(2);
        builder.rate(0, 1, a).unwrap().rate(1, 0, b).unwrap();
        builder.build().unwrap()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn builder_validation() {
        let mut b = CtmcBuilder::new(2);
        assert!(b.rate(0, 5, 1.0).is_err());
        assert!(b.rate(5, 0, 1.0).is_err());
        assert!(b.rate(0, 1, -1.0).is_err());
        assert!(b.rate(0, 1, f64::NAN).is_err());
        assert!(b.rate(0, 0, 1.0).is_err(), "self loops rejected");
        assert!(b.rate(0, 1, 0.0).is_ok(), "zero rates dropped silently");
        assert!(CtmcBuilder::new(0).build().is_err());
    }

    #[test]
    fn duplicate_rates_accumulate() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap().rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.n_transitions(), 2);
        assert!((c.exit_rate(0) - 3.0).abs() < 1e-12);
        let out: Vec<_> = c.outgoing(0).collect();
        assert_eq!(out, vec![(1, 3.0)]);
    }

    #[test]
    fn two_state_all_methods_agree() {
        let c = two_state(2.0, 3.0);
        let expect = [0.6, 0.4];
        for m in [
            SteadyStateMethod::Dense,
            SteadyStateMethod::GaussSeidel {
                max_iter: 10_000,
                tol: 1e-12,
            },
            SteadyStateMethod::Power {
                max_iter: 1_000_000,
                tol: 1e-13,
            },
            SteadyStateMethod::Auto,
        ] {
            let pi = c.steady_state(m).unwrap();
            assert_close(&pi, &expect, 1e-6);
            assert!(c.residual(&pi) < 1e-6);
        }
    }

    #[test]
    fn mm1k_chain_matches_closed_form() {
        // M/M/1/4: birth λ=1, death μ=2 → p_n ∝ ρⁿ.
        let (lam, mu, k) = (1.0f64, 2.0f64, 4usize);
        let mut b = CtmcBuilder::new(k + 1);
        for i in 0..k {
            b.rate(i, i + 1, lam).unwrap();
            b.rate(i + 1, i, mu).unwrap();
        }
        let c = b.build().unwrap();
        let pi = c.steady_state(SteadyStateMethod::Dense).unwrap();
        let rho: f64 = lam / mu;
        let norm: f64 = (0..=k).map(|n| rho.powi(n as i32)).sum();
        for (n, p) in pi.iter().enumerate() {
            assert!((p - rho.powi(n as i32) / norm).abs() < 1e-10);
        }
    }

    #[test]
    fn larger_chain_gs_matches_dense() {
        // Random-ish ring with shortcuts, 200 states.
        let n = 200;
        let mut b = CtmcBuilder::new(n);
        for i in 0..n {
            b.rate(i, (i + 1) % n, 1.0 + (i % 7) as f64).unwrap();
            b.rate(i, (i + 13) % n, 0.3).unwrap();
            if i % 3 == 0 {
                b.rate(i, (i + n - 1) % n, 2.0).unwrap();
            }
        }
        let c = b.build().unwrap();
        let dense = c.steady_state(SteadyStateMethod::Dense).unwrap();
        let gs = c
            .steady_state(SteadyStateMethod::GaussSeidel {
                max_iter: 100_000,
                tol: 1e-13,
            })
            .unwrap();
        assert_close(&dense, &gs, 1e-8);
    }

    #[test]
    fn reducible_chain_detected() {
        // State 1 is absorbing.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap().rate(2, 1, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            c.steady_state(SteadyStateMethod::GaussSeidel {
                max_iter: 100,
                tol: 1e-9
            }),
            Err(MarkovError::Reducible { .. })
        ));
    }

    #[test]
    fn transient_approaches_steady_state() {
        let c = two_state(2.0, 3.0);
        let p = c.transient(&[1.0, 0.0], 50.0, 1e-10).unwrap();
        assert_close(&p, &[0.6, 0.4], 1e-6);
        // At t=0, nothing moves.
        let p0 = c.transient(&[1.0, 0.0], 0.0, 1e-10).unwrap();
        assert_close(&p0, &[1.0, 0.0], 1e-12);
    }

    #[test]
    fn transient_matches_analytic_two_state() {
        // p_0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t} starting from state 0.
        let (a, b) = (2.0, 3.0);
        let c = two_state(a, b);
        for t in [0.1, 0.5, 1.0, 2.0] {
            let p = c.transient(&[1.0, 0.0], t, 1e-12).unwrap();
            let expect = b / (a + b) + a / (a + b) * (-(a + b) * t).exp();
            assert!((p[0] - expect).abs() < 1e-8, "t={t}: {} vs {expect}", p[0]);
        }
    }

    #[test]
    fn transient_long_horizon_segmentation() {
        // Λt ≈ 5000 forces segmentation; must stay normalized and correct.
        let c = two_state(50.0, 50.0);
        let p = c.transient(&[1.0, 0.0], 100.0, 1e-9).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_close(&p, &[0.5, 0.5], 1e-6);
    }

    #[test]
    fn transient_input_validation() {
        let c = two_state(1.0, 1.0);
        assert!(c.transient(&[1.0], 1.0, 1e-9).is_err());
        assert!(c.transient(&[1.0, 0.0], -1.0, 1e-9).is_err());
        assert!(c.transient(&[1.0, 0.0], f64::NAN, 1e-9).is_err());
    }

    #[test]
    fn expected_reward() {
        let c = two_state(1.0, 1.0);
        let pi = c.steady_state(SteadyStateMethod::Dense).unwrap();
        let r = c.expected_reward(&pi, &[10.0, 20.0]);
        assert!((r - 15.0).abs() < 1e-9);
    }

    #[test]
    fn single_state_chain() {
        let c = CtmcBuilder::new(1).build().unwrap();
        assert_eq!(c.steady_state(SteadyStateMethod::Dense).unwrap(), vec![1.0]);
        assert_eq!(
            c.steady_state(SteadyStateMethod::GaussSeidel {
                max_iter: 10,
                tol: 1e-9
            })
            .unwrap(),
            vec![1.0]
        );
    }

    #[test]
    fn dense_guard_rejects_huge() {
        let mut b = CtmcBuilder::new(5000);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        for i in 1..4999 {
            b.rate(i, i + 1, 1.0).unwrap();
            b.rate(i + 1, i, 1.0).unwrap();
        }
        let c = b.build().unwrap();
        assert!(c.steady_state(SteadyStateMethod::Dense).is_err());
    }
}
