//! Markov-chain error type.

use std::fmt;

/// Errors raised by chain construction and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A rate was negative, NaN or infinite.
    InvalidRate {
        /// Source state.
        from: usize,
        /// Target state.
        to: usize,
        /// Offending rate.
        rate: f64,
    },
    /// A state index was out of bounds.
    StateOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of states.
        n_states: usize,
    },
    /// The chain has no states.
    Empty,
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
    /// The chain is reducible w.r.t. the requested analysis (steady state
    /// not unique / unreachable states present).
    Reducible {
        /// A state with no outgoing rate (absorbing) or unreachable.
        state: usize,
    },
    /// A model parameter was out of domain.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// Constraint description.
        constraint: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The queueing model is unstable (ρ ≥ 1) where stability is required.
    Unstable {
        /// The offered load ρ = λ/μ.
        rho: f64,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidRate { from, to, rate } => {
                write!(f, "invalid rate {rate} on transition {from} -> {to}")
            }
            MarkovError::StateOutOfBounds { index, n_states } => {
                write!(f, "state {index} out of bounds (chain has {n_states})")
            }
            MarkovError::Empty => write!(f, "chain has no states"),
            MarkovError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            MarkovError::Reducible { state } => {
                write!(f, "chain is reducible at state {state}")
            }
            MarkovError::InvalidParameter {
                what,
                constraint,
                value,
            } => write!(f, "{what}: value {value} violates {constraint}"),
            MarkovError::Unstable { rho } => {
                write!(f, "queue unstable: rho = {rho} >= 1")
            }
        }
    }
}

impl std::error::Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MarkovError::Empty.to_string().contains("no states"));
        assert!(MarkovError::Unstable { rho: 2.0 }.to_string().contains('2'));
        assert!(MarkovError::NoConvergence {
            iterations: 10,
            residual: 1e-3
        }
        .to_string()
        .contains("10"));
        assert!(MarkovError::InvalidRate {
            from: 0,
            to: 1,
            rate: -1.0
        }
        .to_string()
        .contains("-1"));
        assert!(MarkovError::StateOutOfBounds {
            index: 5,
            n_states: 2
        }
        .to_string()
        .contains('5'));
        assert!(MarkovError::Reducible { state: 3 }
            .to_string()
            .contains('3'));
        assert!(MarkovError::InvalidParameter {
            what: "lambda",
            constraint: "> 0",
            value: 0.0
        }
        .to_string()
        .contains("lambda"));
    }
}
