//! The paper's Markov model: a birth–death CPU chain with two deterministic
//! delays approximated by Cox's method of supplementary variables.
//!
//! States (paper Fig. 2): `standby (p_s)`, `powerup (p_u)`, `idle (p_i)` and
//! the busy ladder `p_01, p_02, …` (≥1 jobs). The power-down transition
//! (idle → standby after a constant `T`) and the power-up transition
//! (constant `D`) are not memoryless; the paper derives stationary equations
//! with age variables and obtains closed forms — Eqs. (11)–(24) — which this
//! module implements verbatim:
//!
//! ```text
//! denom  = e^{λT} + (1−ρ)(1−e^{−λD}) + ρλD          (17,18,19 share it)
//! p_s    = (1−ρ) / denom                             (17)
//! p_i    = (e^{λT} − 1) p_s                          (12)
//! p_u    = (1−ρ)(1−e^{−λD}) / denom                  (18)
//! G0(1)  = ρ(e^{λT} + λD) / denom                    (19)  [utilization]
//! L(1)   = ρ/(1−ρ) · (e^{λT} + ½(1−ρ)λ²D² + (2−ρ)λD) / denom   (21)
//! τ      = L(1)/λ                                    (22)  [Little's law]
//! T_run  = (N + L(1)²)/λ                             (23)
//! E      = (p_i P_idle + p_s P_stby + p_u P_pup + G0(1) P_act)·T_run  (24)
//! ```
//!
//! The model is exact for `D → 0` and degrades as `λD` grows — exactly the
//! failure mode the paper's Tables 4–5 demonstrate.

use wsnem_energy::{EnergyBreakdown, PowerProfile, StateFractions};

use crate::error::MarkovError;

/// The supplementary-variable CPU model with parameters (λ, μ, T, D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplementaryVariableModel {
    lambda: f64,
    mu: f64,
    t_threshold: f64,
    d_delay: f64,
}

impl SupplementaryVariableModel {
    /// Build and validate: λ, μ > 0; ρ = λ/μ < 1; T, D ≥ 0 finite.
    pub fn new(lambda: f64, mu: f64, t_threshold: f64, d_delay: f64) -> Result<Self, MarkovError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "lambda",
                constraint: "> 0 and finite",
                value: lambda,
            });
        }
        if !(mu > 0.0) || !mu.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "mu",
                constraint: "> 0 and finite",
                value: mu,
            });
        }
        let rho = lambda / mu;
        if rho >= 1.0 {
            return Err(MarkovError::Unstable { rho });
        }
        if !(t_threshold >= 0.0) || !t_threshold.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "t_threshold",
                constraint: ">= 0 and finite",
                value: t_threshold,
            });
        }
        if !(d_delay >= 0.0) || !d_delay.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "d_delay",
                constraint: ">= 0 and finite",
                value: d_delay,
            });
        }
        Ok(Self {
            lambda,
            mu,
            t_threshold,
            d_delay,
        })
    }

    /// Arrival rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Service rate μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Offered load ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// The shared denominator of Eqs. (17)–(19).
    fn denominator(&self) -> f64 {
        let lt = self.lambda * self.t_threshold;
        let ld = self.lambda * self.d_delay;
        lt.exp() + (1.0 - self.rho()) * (1.0 - (-ld).exp()) + self.rho() * ld
    }

    /// Eq. (17): stationary probability of Standby.
    pub fn p_standby(&self) -> f64 {
        (1.0 - self.rho()) / self.denominator()
    }

    /// Eq. (12): stationary probability of Idle.
    pub fn p_idle(&self) -> f64 {
        ((self.lambda * self.t_threshold).exp() - 1.0) * self.p_standby()
    }

    /// Eq. (18): stationary probability of Powering Up.
    pub fn p_powerup(&self) -> f64 {
        let ld = self.lambda * self.d_delay;
        (1.0 - self.rho()) * (1.0 - (-ld).exp()) / self.denominator()
    }

    /// Eq. (19): utilization G0(1) — probability of ≥ 1 job in service.
    pub fn utilization(&self) -> f64 {
        let lt = self.lambda * self.t_threshold;
        let ld = self.lambda * self.d_delay;
        self.rho() * (lt.exp() + ld) / self.denominator()
    }

    /// All four stationary probabilities as [`StateFractions`].
    pub fn fractions(&self) -> StateFractions {
        StateFractions::new(
            self.p_standby(),
            self.p_powerup(),
            self.p_idle(),
            self.utilization(),
        )
    }

    /// Eq. (21): mean number of jobs in the system L(1).
    pub fn mean_jobs(&self) -> f64 {
        let rho = self.rho();
        let lt = self.lambda * self.t_threshold;
        let ld = self.lambda * self.d_delay;
        rho / (1.0 - rho) * (lt.exp() + 0.5 * (1.0 - rho) * ld * ld + (2.0 - rho) * ld)
            / self.denominator()
    }

    /// Eq. (22): mean per-job latency τ = L(1)/λ.
    pub fn mean_latency(&self) -> f64 {
        self.mean_jobs() / self.lambda
    }

    /// Eq. (23): estimated total running time for `n_jobs` jobs.
    pub fn total_time(&self, n_jobs: f64) -> f64 {
        let l = self.mean_jobs();
        (n_jobs + l * l) / self.lambda
    }

    /// Eq. (24): total energy for `n_jobs` jobs under `profile`.
    pub fn energy_eq24(&self, profile: &PowerProfile, n_jobs: f64) -> EnergyBreakdown {
        wsnem_energy::energy_eq24(
            &self.fractions(),
            profile,
            n_jobs,
            self.mean_jobs(),
            self.lambda,
        )
    }

    /// Eq. (25)-style energy over an explicit horizon (what the comparison
    /// experiments use so all three models integrate over the same window).
    pub fn energy_eq25(&self, profile: &PowerProfile, time_s: f64) -> EnergyBreakdown {
        wsnem_energy::energy_eq25(&self.fractions(), profile, time_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model(t: f64, d: f64) -> SupplementaryVariableModel {
        // λ = 1/s, mean service 0.1 s (μ = 10/s) — see DESIGN.md on Table 2.
        SupplementaryVariableModel::new(1.0, 10.0, t, d).unwrap()
    }

    #[test]
    fn validation() {
        assert!(SupplementaryVariableModel::new(0.0, 1.0, 0.1, 0.1).is_err());
        assert!(SupplementaryVariableModel::new(1.0, 0.0, 0.1, 0.1).is_err());
        assert!(matches!(
            SupplementaryVariableModel::new(2.0, 1.0, 0.1, 0.1),
            Err(MarkovError::Unstable { .. })
        ));
        assert!(SupplementaryVariableModel::new(1.0, 2.0, -0.1, 0.1).is_err());
        assert!(SupplementaryVariableModel::new(1.0, 2.0, 0.1, f64::NAN).is_err());
        assert!(SupplementaryVariableModel::new(1.0, 2.0, 0.1, 0.1).is_ok());
    }

    #[test]
    fn probabilities_normalize() {
        for t in [0.0, 0.1, 0.5, 1.0] {
            for d in [0.0, 0.001, 0.3, 10.0] {
                let m = SupplementaryVariableModel::new(1.0, 10.0, t, d).unwrap();
                let f = m.fractions();
                assert!(f.is_normalized(1e-12), "T={t} D={d}: total {}", f.total());
            }
        }
    }

    #[test]
    fn reduces_to_mm1_when_delays_vanish() {
        // T = D = 0: p_s = 1−ρ (empty-system probability), p_i = p_u = 0,
        // utilization = ρ, L = ρ/(1−ρ).
        let m = SupplementaryVariableModel::new(1.0, 2.0, 0.0, 0.0).unwrap();
        assert!((m.p_standby() - 0.5).abs() < 1e-12);
        assert!(m.p_idle().abs() < 1e-12);
        assert!(m.p_powerup().abs() < 1e-12);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
        assert!((m.mean_jobs() - 1.0).abs() < 1e-12);
        assert!((m.mean_latency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_grows_standby_shrinks_with_threshold() {
        let lo = paper_model(0.1, 0.001);
        let hi = paper_model(0.9, 0.001);
        assert!(hi.p_idle() > lo.p_idle());
        assert!(hi.p_standby() < lo.p_standby());
        // Utilization stays ≈ ρ for tiny D.
        assert!((lo.utilization() - 0.1).abs() < 1e-3);
        assert!((hi.utilization() - 0.1).abs() < 1e-3);
    }

    #[test]
    fn fig4_shape_at_paper_parameters() {
        // λ=1, μ=10, D=0.001: at T=1 the model predicts
        // standby ≈ 33%, idle ≈ 57%, active ≈ 10% (see DESIGN.md).
        let m = paper_model(1.0, 0.001);
        let f = m.fractions();
        assert!((f.standby - 0.331).abs() < 0.005, "standby {}", f.standby);
        assert!((f.idle - 0.569).abs() < 0.005, "idle {}", f.idle);
        assert!((f.active - 0.100).abs() < 0.005, "active {}", f.active);
        assert!(f.powerup < 0.001);
    }

    #[test]
    fn large_powerup_delay_inflates_utilization_estimate() {
        // The documented failure mode: at D = 10 s the supplementary-variable
        // approximation overestimates utilization (~0.33 instead of the true
        // ρ = 0.1) — this is what Table 4 quantifies.
        let m = paper_model(0.5, 10.0);
        assert!(
            m.utilization() > 0.25,
            "expected inflated utilization, got {}",
            m.utilization()
        );
    }

    #[test]
    fn energy_equations() {
        let m = paper_model(0.5, 0.001);
        let p = PowerProfile::pxa271();
        let e25 = m.energy_eq25(&p, 1000.0);
        assert!(e25.total_joules() > 17.0, "above pure-standby floor");
        assert!(e25.total_joules() < 193.0, "below pure-active ceiling");
        let e24 = m.energy_eq24(&p, 1000.0);
        // Eq. 23's horizon (N + L²)/λ ≈ 1000 s for small L.
        assert!((e24.time_s - m.total_time(1000.0)).abs() < 1e-9);
        assert!((e24.total_joules() - e25.total_joules()).abs() < 5.0);
    }

    #[test]
    fn latency_satisfies_littles_law_by_construction() {
        let m = paper_model(0.7, 0.3);
        assert!((m.mean_latency() * m.lambda() - m.mean_jobs()).abs() < 1e-12);
        assert!((m.rho() - 0.1).abs() < 1e-12);
        assert_eq!(m.mu(), 10.0);
    }

    // Hand-rolled property tests (the workspace builds offline, without
    // proptest): a SplitMix64 stream drives uniform draws over the same
    // parameter boxes the old proptest strategies used.

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn uniform(state: &mut u64, lo: f64, hi: f64) -> f64 {
        let u = (splitmix(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    #[test]
    fn prop_normalized_for_all_parameters() {
        let mut s = 0x5EED_0001u64;
        for _ in 0..100 {
            let lambda = uniform(&mut s, 0.05, 5.0);
            let ratio = uniform(&mut s, 0.05, 0.95); // ρ
            let t = uniform(&mut s, 0.0, 5.0);
            let d = uniform(&mut s, 0.0, 20.0);
            let mu = lambda / ratio;
            let m = SupplementaryVariableModel::new(lambda, mu, t, d).unwrap();
            let f = m.fractions();
            assert!(
                f.is_normalized(1e-9),
                "λ={lambda} ρ={ratio} T={t} D={d}: total = {}",
                f.total()
            );
            assert!(m.mean_jobs() >= 0.0);
            assert!(m.mean_latency() >= 0.0);
        }
    }

    #[test]
    fn prop_monotone_idle_in_threshold() {
        let mut s = 0x5EED_0002u64;
        for _ in 0..100 {
            let t1 = uniform(&mut s, 0.0, 2.0);
            let dt = uniform(&mut s, 0.01, 2.0);
            let a = SupplementaryVariableModel::new(1.0, 10.0, t1, 0.01).unwrap();
            let b = SupplementaryVariableModel::new(1.0, 10.0, t1 + dt, 0.01).unwrap();
            assert!(b.p_idle() >= a.p_idle(), "T={t1} dT={dt}");
            assert!(b.p_standby() <= a.p_standby(), "T={t1} dT={dt}");
        }
    }

    #[test]
    fn prop_energy_nonnegative_and_time_linear() {
        let mut s = 0x5EED_0003u64;
        for _ in 0..100 {
            let t = uniform(&mut s, 0.0, 1.0);
            let d = uniform(&mut s, 0.0, 1.0);
            let horizon = uniform(&mut s, 1.0, 10_000.0);
            let m = SupplementaryVariableModel::new(1.0, 10.0, t, d).unwrap();
            let p = PowerProfile::pxa271();
            let e = m.energy_eq25(&p, horizon);
            assert!(e.total_joules() >= 0.0);
            let e2 = m.energy_eq25(&p, 2.0 * horizon);
            assert!(
                (e2.total_mj - 2.0 * e.total_mj).abs() < 1e-6 * e.total_mj.max(1.0),
                "T={t} D={d} horizon={horizon}"
            );
        }
    }
}
