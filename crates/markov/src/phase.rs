//! Erlang-phase CTMC approximation of the CPU's deterministic delays.
//!
//! The paper closes (§6) wishing for "an effective method of modeling
//! constant delays in Markov chains". The classical answer is phase-type
//! expansion: replace the constant Power-Up Delay `D` by an Erlang-`k` stage
//! chain (mean `D`, variance `D²/k`) and the constant idle timeout `T` by an
//! Erlang-`m` stage chain. As `k, m → ∞` the CTMC converges to the true
//! semantics; the ablation experiment (DESIGN.md E7) measures that
//! convergence against the DES ground truth.
//!
//! State space (truncated at `max_jobs` jobs):
//!
//! * `Standby` — 1 state
//! * `PowerUp(phase j, q jobs)` — `k × max_jobs` states (q ≥ 1)
//! * `Active(q jobs)` — `max_jobs` states (q ≥ 1)
//! * `Idle(timer phase i)` — `m` states (q = 0)

use wsnem_energy::StateFractions;

use crate::ctmc::{Ctmc, CtmcBuilder, SteadyStateMethod};
use crate::error::MarkovError;

/// Builder/descriptor for the phase-expanded CPU chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCpuChain {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
    /// Power Down Threshold `T` (seconds).
    pub t_threshold: f64,
    /// Power Up Delay `D` (seconds).
    pub d_delay: f64,
    /// Erlang phases for the power-up delay (`k ≥ 1`).
    pub k_up: u32,
    /// Erlang phases for the idle timeout (`m ≥ 1`).
    pub m_down: u32,
    /// Queue truncation: maximum jobs in system.
    pub max_jobs: u32,
}

impl PhaseCpuChain {
    /// Validated constructor. Picks a queue truncation adequate for the
    /// offered load and power-up backlog if `max_jobs` is 0.
    pub fn new(
        lambda: f64,
        mu: f64,
        t_threshold: f64,
        d_delay: f64,
        k_up: u32,
        m_down: u32,
        max_jobs: u32,
    ) -> Result<Self, MarkovError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "lambda",
                constraint: "> 0 and finite",
                value: lambda,
            });
        }
        if !(mu > 0.0) || !mu.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "mu",
                constraint: "> 0 and finite",
                value: mu,
            });
        }
        if lambda / mu >= 1.0 {
            return Err(MarkovError::Unstable { rho: lambda / mu });
        }
        if !(t_threshold > 0.0) || !t_threshold.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "t_threshold",
                constraint: "> 0 and finite (use M/M/1 for T = 0)",
                value: t_threshold,
            });
        }
        if !(d_delay > 0.0) || !d_delay.is_finite() {
            return Err(MarkovError::InvalidParameter {
                what: "d_delay",
                constraint: "> 0 and finite",
                value: d_delay,
            });
        }
        if k_up == 0 || m_down == 0 {
            return Err(MarkovError::InvalidParameter {
                what: "phases",
                constraint: ">= 1",
                value: 0.0,
            });
        }
        let max_jobs = if max_jobs == 0 {
            // Backlog during power-up ≈ λD; add generous queueing headroom.
            (20.0 + 6.0 * lambda * d_delay + 10.0 * lambda / mu).ceil() as u32
        } else {
            max_jobs
        };
        Ok(Self {
            lambda,
            mu,
            t_threshold,
            d_delay,
            k_up,
            m_down,
            max_jobs,
        })
    }

    /// Total CTMC states.
    pub fn n_states(&self) -> usize {
        let q = self.max_jobs as usize;
        1 + self.k_up as usize * q + q + self.m_down as usize
    }

    // State indexing -------------------------------------------------------
    // 0                                  : Standby
    // 1 + j*Q + (q-1), j<k, 1<=q<=Q      : PowerUp(phase j, q jobs)
    // 1 + k*Q + (q-1), 1<=q<=Q           : Active(q jobs)
    // 1 + k*Q + Q + i, i<m               : Idle(timer phase i)

    fn idx_standby(&self) -> usize {
        0
    }

    fn idx_powerup(&self, phase: u32, q: u32) -> usize {
        debug_assert!(phase < self.k_up && q >= 1 && q <= self.max_jobs);
        1 + phase as usize * self.max_jobs as usize + (q as usize - 1)
    }

    fn idx_active(&self, q: u32) -> usize {
        debug_assert!(q >= 1 && q <= self.max_jobs);
        1 + self.k_up as usize * self.max_jobs as usize + (q as usize - 1)
    }

    fn idx_idle(&self, phase: u32) -> usize {
        debug_assert!(phase < self.m_down);
        1 + self.k_up as usize * self.max_jobs as usize + self.max_jobs as usize + phase as usize
    }

    /// Construct the CTMC generator.
    pub fn build(&self) -> Result<Ctmc, MarkovError> {
        let lam = self.lambda;
        let mu = self.mu;
        let nu_up = self.k_up as f64 / self.d_delay; // per-phase power-up rate
        let nu_dn = self.m_down as f64 / self.t_threshold; // per-phase timer rate
        let q_max = self.max_jobs;

        let mut b = CtmcBuilder::new(self.n_states());
        // Standby --λ--> PowerUp(0, 1).
        b.rate(self.idx_standby(), self.idx_powerup(0, 1), lam)?;

        for j in 0..self.k_up {
            for q in 1..=q_max {
                let here = self.idx_powerup(j, q);
                // Arrivals accumulate during power-up (truncated at Q).
                if q < q_max {
                    b.rate(here, self.idx_powerup(j, q + 1), lam)?;
                }
                // Phase advance.
                if j + 1 < self.k_up {
                    b.rate(here, self.idx_powerup(j + 1, q), nu_up)?;
                } else {
                    b.rate(here, self.idx_active(q), nu_up)?;
                }
            }
        }

        for q in 1..=q_max {
            let here = self.idx_active(q);
            if q < q_max {
                b.rate(here, self.idx_active(q + 1), lam)?;
            }
            if q > 1 {
                b.rate(here, self.idx_active(q - 1), mu)?;
            } else {
                b.rate(here, self.idx_idle(0), mu)?;
            }
        }

        for i in 0..self.m_down {
            let here = self.idx_idle(i);
            // An arrival aborts the idle timer and starts service at once.
            b.rate(here, self.idx_active(1), lam)?;
            if i + 1 < self.m_down {
                b.rate(here, self.idx_idle(i + 1), nu_dn)?;
            } else {
                b.rate(here, self.idx_standby(), nu_dn)?;
            }
        }
        b.build()
    }

    /// Solve for the stationary distribution and fold it into the four-state
    /// occupancy fractions (renormalized to absorb iterative-solver drift).
    pub fn fractions(&self) -> Result<StateFractions, MarkovError> {
        let ctmc = self.build()?;
        let pi = ctmc.steady_state(SteadyStateMethod::Auto)?;
        Ok(self.fold(&pi))
    }

    /// Occupancy fractions at time `t`, starting cold (Standby, empty) —
    /// the transient view of "how long until the percentages stabilize"
    /// (paper §2), computed analytically by uniformization instead of by
    /// long simulation.
    pub fn transient_fractions(&self, t: f64, tol: f64) -> Result<StateFractions, MarkovError> {
        let ctmc = self.build()?;
        let mut p0 = vec![0.0; self.n_states()];
        p0[self.idx_standby()] = 1.0;
        let pi = ctmc.transient(&p0, t, tol)?;
        Ok(self.fold(&pi))
    }

    /// Fold a distribution over chain states into the four-state occupancy.
    fn fold(&self, pi: &[f64]) -> StateFractions {
        let standby = pi[self.idx_standby()];
        let mut powerup = 0.0;
        let mut active = 0.0;
        let mut idle = 0.0;
        for j in 0..self.k_up {
            for q in 1..=self.max_jobs {
                powerup += pi[self.idx_powerup(j, q)];
            }
        }
        for q in 1..=self.max_jobs {
            active += pi[self.idx_active(q)];
        }
        for i in 0..self.m_down {
            idle += pi[self.idx_idle(i)];
        }
        let total = standby + powerup + active + idle;
        StateFractions::new(
            standby / total,
            powerup / total,
            idle / total,
            active / total,
        )
    }

    /// Mean number of jobs in the system under the stationary distribution.
    pub fn mean_jobs(&self) -> Result<f64, MarkovError> {
        let ctmc = self.build()?;
        let pi = ctmc.steady_state(SteadyStateMethod::Auto)?;
        let mut l = 0.0;
        for j in 0..self.k_up {
            for q in 1..=self.max_jobs {
                l += q as f64 * pi[self.idx_powerup(j, q)];
            }
        }
        for q in 1..=self.max_jobs {
            l += q as f64 * pi[self.idx_active(q)];
        }
        Ok(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(t: f64, d: f64, k: u32, m: u32) -> PhaseCpuChain {
        PhaseCpuChain::new(1.0, 10.0, t, d, k, m, 0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(PhaseCpuChain::new(0.0, 1.0, 1.0, 1.0, 1, 1, 0).is_err());
        assert!(PhaseCpuChain::new(1.0, 1.0, 1.0, 1.0, 1, 1, 0).is_err());
        assert!(PhaseCpuChain::new(1.0, 10.0, 0.0, 1.0, 1, 1, 0).is_err());
        assert!(PhaseCpuChain::new(1.0, 10.0, 1.0, 0.0, 1, 1, 0).is_err());
        assert!(PhaseCpuChain::new(1.0, 10.0, 1.0, 1.0, 0, 1, 0).is_err());
        assert!(PhaseCpuChain::new(1.0, 10.0, 1.0, 1.0, 1, 0, 0).is_err());
        assert!(chain(0.5, 0.001, 1, 1).n_states() > 3);
    }

    #[test]
    fn fractions_normalize() {
        for (k, m) in [(1, 1), (2, 2), (4, 4), (8, 8)] {
            let f = chain(0.5, 0.3, k, m).fractions().unwrap();
            assert!(f.is_normalized(1e-9), "k={k} m={m}: {f:?}");
        }
    }

    #[test]
    fn utilization_close_to_rho() {
        // Unlike the supplementary-variable approximation, the phase chain
        // keeps utilization near ρ even for large D (all jobs are served).
        let f = chain(0.5, 10.0, 8, 4).fractions().unwrap();
        assert!(
            (f.active - 0.1).abs() < 0.02,
            "active = {} should be near ρ = 0.1",
            f.active
        );
        assert!(f.powerup > 0.2, "large D → substantial power-up share");
    }

    #[test]
    fn more_phases_tighten_the_idle_timer() {
        // With k=m=1 the timer is exponential (high variance → some very
        // short idle periods power down too early). More phases → the timer
        // behaves closer to the constant T.
        let f1 = chain(0.5, 0.001, 1, 1).fractions().unwrap();
        let f8 = chain(0.5, 0.001, 1, 8).fractions().unwrap();
        let f32 = chain(0.5, 0.001, 1, 32).fractions().unwrap();
        // Reference: supplementary-variable model is exact at D→0.
        let exact = crate::supplementary::SupplementaryVariableModel::new(1.0, 10.0, 0.5, 0.001)
            .unwrap()
            .fractions();
        let e1 = (f1.idle - exact.idle).abs();
        let e8 = (f8.idle - exact.idle).abs();
        let e32 = (f32.idle - exact.idle).abs();
        assert!(e8 < e1, "8 phases ({e8}) should beat 1 phase ({e1})");
        assert!(
            e32 < e8 * 1.5,
            "32 phases ({e32}) should not regress vs 8 ({e8})"
        );
    }

    #[test]
    fn mean_jobs_reasonable() {
        // D small → behaves like M/M/1-with-vacations; L modest.
        let l = chain(0.5, 0.001, 2, 2).mean_jobs().unwrap();
        assert!(l > 0.0 && l < 2.0, "L = {l}");
        // D = 10 → ~λD jobs pile up during power-up.
        let l_big = chain(0.5, 10.0, 4, 2).mean_jobs().unwrap();
        assert!(l_big > 1.0, "L = {l_big}");
    }

    #[test]
    fn transient_starts_cold_and_reaches_steady_state() {
        let c = chain(0.5, 0.3, 2, 2);
        // t = 0: all mass in standby.
        let f0 = c.transient_fractions(0.0, 1e-9).unwrap();
        assert!((f0.standby - 1.0).abs() < 1e-9, "{f0:?}");
        // Short t: still mostly standby (first arrival ~Exp(1)).
        let f_short = c.transient_fractions(0.05, 1e-9).unwrap();
        assert!(f_short.standby > 0.9);
        // Long t: matches the stationary solution.
        let f_inf = c.transient_fractions(500.0, 1e-9).unwrap();
        let stat = c.fractions().unwrap();
        assert!(
            f_inf.mean_abs_delta_pct(&stat) < 0.1,
            "{f_inf:?} vs {stat:?}"
        );
        // Monotone loss of standby mass early on.
        let f1 = c.transient_fractions(1.0, 1e-9).unwrap();
        let f5 = c.transient_fractions(5.0, 1e-9).unwrap();
        assert!(f0.standby >= f_short.standby && f_short.standby >= f1.standby);
        assert!(f1.standby >= f5.standby - 0.05);
    }

    #[test]
    fn truncation_override_respected() {
        let c = PhaseCpuChain::new(1.0, 10.0, 0.5, 0.001, 2, 2, 7).unwrap();
        assert_eq!(c.max_jobs, 7);
        assert_eq!(c.n_states(), 1 + 2 * 7 + 7 + 2);
        let f = c.fractions().unwrap();
        assert!(f.is_normalized(1e-9));
    }
}
