//! # wsnem-markov
//!
//! Continuous-time Markov chain (CTMC) substrate and the paper's
//! supplementary-variable processor model.
//!
//! * [`ctmc`] — sparse CTMC representation with steady-state solvers (dense
//!   Gaussian elimination for small chains, Gauss–Seidel for large ones) and
//!   transient analysis by uniformization.
//! * [`birthdeath`] — birth–death chains and M/M/1 / M/M/1/K closed forms
//!   (validation baselines).
//! * [`supplementary`] — the paper's Markov model of the CPU (Eqs. 11–24):
//!   Cox's method of supplementary variables approximating the two
//!   deterministic delays (Power Down Threshold `T`, Power Up Delay `D`).
//! * [`phase`] — Erlang-phase CTMC approximations of those deterministic
//!   delays (the paper §6 wish: "an effective method of modeling constant
//!   delays in Markov chains"); used by the ablation experiments.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod birthdeath;
pub mod ctmc;
pub mod error;
pub mod phase;
pub mod supplementary;

pub use birthdeath::{mm1, mm1k, BirthDeath};
pub use ctmc::{Ctmc, CtmcBuilder, SteadyStateMethod};
pub use error::MarkovError;
pub use phase::PhaseCpuChain;
pub use supplementary::SupplementaryVariableModel;
