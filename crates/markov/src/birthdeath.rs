//! Birth–death processes and M/M/1(/K) closed forms.
//!
//! These are the textbook baselines the substrates are validated against:
//! the DES and the Petri engine must reproduce them, and the paper's model
//! must *reduce* to M/M/1 as `T, D → 0`.

use crate::error::MarkovError;

/// A finite birth–death chain on states `0..=n` with level-dependent rates.
#[derive(Debug, Clone, PartialEq)]
pub struct BirthDeath {
    /// `births[i]` is the rate `i → i+1` (length n).
    births: Vec<f64>,
    /// `deaths[i]` is the rate `i+1 → i` (length n).
    deaths: Vec<f64>,
}

impl BirthDeath {
    /// Build from birth rates (`i → i+1`) and death rates (`i+1 → i`).
    ///
    /// Both vectors must have equal, non-zero length and positive entries.
    pub fn new(births: Vec<f64>, deaths: Vec<f64>) -> Result<Self, MarkovError> {
        if births.is_empty() || births.len() != deaths.len() {
            return Err(MarkovError::InvalidParameter {
                what: "BirthDeath",
                constraint: "births and deaths non-empty, equal length",
                value: births.len() as f64,
            });
        }
        for (i, &b) in births.iter().enumerate() {
            if !(b > 0.0) || !b.is_finite() {
                return Err(MarkovError::InvalidRate {
                    from: i,
                    to: i + 1,
                    rate: b,
                });
            }
        }
        for (i, &d) in deaths.iter().enumerate() {
            if !(d > 0.0) || !d.is_finite() {
                return Err(MarkovError::InvalidRate {
                    from: i + 1,
                    to: i,
                    rate: d,
                });
            }
        }
        Ok(Self { births, deaths })
    }

    /// Number of states (levels 0..=n).
    pub fn n_states(&self) -> usize {
        self.births.len() + 1
    }

    /// Product-form stationary distribution.
    pub fn steady_state(&self) -> Vec<f64> {
        let n = self.n_states();
        let mut pi = Vec::with_capacity(n);
        pi.push(1.0f64);
        for i in 0..self.births.len() {
            let next = pi[i] * self.births[i] / self.deaths[i];
            pi.push(next);
        }
        let total: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= total;
        }
        pi
    }

    /// Mean level `Σ i π_i`.
    pub fn mean_level(&self) -> f64 {
        self.steady_state()
            .iter()
            .enumerate()
            .map(|(i, p)| i as f64 * p)
            .sum()
    }
}

/// Closed-form M/M/1 results (requires ρ = λ/μ < 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
}

/// Construct a validated M/M/1 descriptor.
pub fn mm1(lambda: f64, mu: f64) -> Result<Mm1, MarkovError> {
    if !(lambda > 0.0) || !lambda.is_finite() {
        return Err(MarkovError::InvalidParameter {
            what: "mm1.lambda",
            constraint: "> 0 and finite",
            value: lambda,
        });
    }
    if !(mu > 0.0) || !mu.is_finite() {
        return Err(MarkovError::InvalidParameter {
            what: "mm1.mu",
            constraint: "> 0 and finite",
            value: mu,
        });
    }
    let rho = lambda / mu;
    if rho >= 1.0 {
        return Err(MarkovError::Unstable { rho });
    }
    Ok(Mm1 { lambda, mu })
}

impl Mm1 {
    /// Offered load ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// P(n jobs in system) = (1−ρ)ρⁿ.
    pub fn p_n(&self, n: u32) -> f64 {
        let rho = self.rho();
        (1.0 - rho) * rho.powi(n as i32)
    }

    /// Mean number in system L = ρ/(1−ρ).
    pub fn mean_jobs(&self) -> f64 {
        let rho = self.rho();
        rho / (1.0 - rho)
    }

    /// Mean time in system W = 1/(μ−λ).
    pub fn mean_latency(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean queue length (excluding the job in service) Lq = ρ²/(1−ρ).
    pub fn mean_queue(&self) -> f64 {
        let rho = self.rho();
        rho * rho / (1.0 - rho)
    }

    /// Mean waiting time (excluding service) Wq = ρ/(μ−λ).
    pub fn mean_wait(&self) -> f64 {
        self.rho() / (self.mu - self.lambda)
    }
}

/// Closed-form M/M/1/K results (finite buffer of K jobs total in system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1k {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
    /// System capacity K ≥ 1.
    pub k: u32,
}

/// Construct a validated M/M/1/K descriptor (ρ may exceed 1 — the chain is
/// finite and always stable).
pub fn mm1k(lambda: f64, mu: f64, k: u32) -> Result<Mm1k, MarkovError> {
    if !(lambda > 0.0) || !lambda.is_finite() {
        return Err(MarkovError::InvalidParameter {
            what: "mm1k.lambda",
            constraint: "> 0 and finite",
            value: lambda,
        });
    }
    if !(mu > 0.0) || !mu.is_finite() {
        return Err(MarkovError::InvalidParameter {
            what: "mm1k.mu",
            constraint: "> 0 and finite",
            value: mu,
        });
    }
    if k == 0 {
        return Err(MarkovError::InvalidParameter {
            what: "mm1k.k",
            constraint: ">= 1",
            value: 0.0,
        });
    }
    Ok(Mm1k { lambda, mu, k })
}

impl Mm1k {
    /// Offered load ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Stationary P(n in system), n in `0..=K`.
    pub fn p_n(&self, n: u32) -> f64 {
        if n > self.k {
            return 0.0;
        }
        let rho = self.rho();
        if (rho - 1.0).abs() < 1e-12 {
            return 1.0 / (self.k as f64 + 1.0);
        }
        (1.0 - rho) * rho.powi(n as i32) / (1.0 - rho.powi(self.k as i32 + 1))
    }

    /// Blocking probability (arrival finds the system full).
    pub fn blocking_probability(&self) -> f64 {
        self.p_n(self.k)
    }

    /// Effective (accepted) arrival rate.
    pub fn effective_lambda(&self) -> f64 {
        self.lambda * (1.0 - self.blocking_probability())
    }

    /// Mean number in system.
    pub fn mean_jobs(&self) -> f64 {
        (0..=self.k).map(|n| n as f64 * self.p_n(n)).sum()
    }

    /// Mean latency of *accepted* jobs (Little's law with λ_eff).
    pub fn mean_latency(&self) -> f64 {
        self.mean_jobs() / self.effective_lambda()
    }

    /// Full stationary vector.
    pub fn steady_state(&self) -> Vec<f64> {
        (0..=self.k).map(|n| self.p_n(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn birthdeath_validation() {
        assert!(BirthDeath::new(vec![], vec![]).is_err());
        assert!(BirthDeath::new(vec![1.0], vec![]).is_err());
        assert!(BirthDeath::new(vec![0.0], vec![1.0]).is_err());
        assert!(BirthDeath::new(vec![1.0], vec![-1.0]).is_err());
        assert!(BirthDeath::new(vec![1.0], vec![2.0]).is_ok());
    }

    #[test]
    fn birthdeath_two_level() {
        // 0 <-> 1 with rates (a=2, b=3): π = (0.6, 0.4).
        let bd = BirthDeath::new(vec![2.0], vec![3.0]).unwrap();
        let pi = bd.steady_state();
        assert!((pi[0] - 0.6).abs() < 1e-12);
        assert!((pi[1] - 0.4).abs() < 1e-12);
        assert!((bd.mean_level() - 0.4).abs() < 1e-12);
        assert_eq!(bd.n_states(), 2);
    }

    #[test]
    fn birthdeath_matches_mm1k() {
        let (lam, mu, k) = (3.0, 2.0, 6u32);
        let bd = BirthDeath::new(vec![lam; k as usize], vec![mu; k as usize]).unwrap();
        let pi = bd.steady_state();
        let closed = mm1k(lam, mu, k).unwrap();
        for (n, p) in pi.iter().enumerate() {
            assert!((p - closed.p_n(n as u32)).abs() < 1e-12, "n={n}");
        }
        assert!((bd.mean_level() - closed.mean_jobs()).abs() < 1e-12);
    }

    #[test]
    fn mm1_closed_forms() {
        let q = mm1(1.0, 2.0).unwrap();
        assert!((q.rho() - 0.5).abs() < 1e-12);
        assert!((q.mean_jobs() - 1.0).abs() < 1e-12);
        assert!((q.mean_latency() - 1.0).abs() < 1e-12);
        assert!((q.mean_queue() - 0.5).abs() < 1e-12);
        assert!((q.mean_wait() - 0.5).abs() < 1e-12);
        // Littles law: L = λW.
        assert!((q.mean_jobs() - q.lambda * q.mean_latency()).abs() < 1e-12);
        // Distribution sums to 1.
        let total: f64 = (0..200).map(|n| q.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_rejects_unstable() {
        assert!(matches!(mm1(2.0, 1.0), Err(MarkovError::Unstable { .. })));
        assert!(matches!(mm1(1.0, 1.0), Err(MarkovError::Unstable { .. })));
        assert!(mm1(0.0, 1.0).is_err());
        assert!(mm1(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn mm1k_distribution_normalizes() {
        for (lam, mu, k) in [(1.0, 2.0, 5u32), (2.0, 1.0, 4), (1.0, 1.0, 3)] {
            let q = mm1k(lam, mu, k).unwrap();
            let total: f64 = q.steady_state().iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "λ={lam} μ={mu} K={k}");
            assert!(q.blocking_probability() > 0.0);
            assert!(q.effective_lambda() < q.lambda);
            assert!(q.mean_latency() > 0.0);
            assert_eq!(q.p_n(k + 1), 0.0);
        }
    }

    #[test]
    fn mm1k_approaches_mm1_for_large_k() {
        let q = mm1(1.0, 2.0).unwrap();
        let qk = mm1k(1.0, 2.0, 60).unwrap();
        assert!((q.mean_jobs() - qk.mean_jobs()).abs() < 1e-9);
        assert!(qk.blocking_probability() < 1e-15);
    }

    #[test]
    fn mm1k_critical_load_uniform() {
        let q = mm1k(1.0, 1.0, 4).unwrap();
        for n in 0..=4 {
            assert!((q.p_n(n) - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn mm1k_validation() {
        assert!(mm1k(0.0, 1.0, 2).is_err());
        assert!(mm1k(1.0, 0.0, 2).is_err());
        assert!(mm1k(1.0, 1.0, 0).is_err());
    }
}
