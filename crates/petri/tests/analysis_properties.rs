//! Seeded property battery for `petri::analysis`: every returned semiflow
//! must actually annihilate the incidence matrix, and the deadlock /
//! dead-transition verdicts of bounded exploration must agree with what
//! short token-game simulations observe on the same nets.
//!
//! Random generation is hand-rolled over the workspace RNG (the build is
//! offline, without proptest); each case is reproducible from its index.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_petri::analysis::{
    dead_transitions, explain_dead_marking, explore, incidence_matrix, is_siphon, p_semiflows,
    structurally_dead_transitions, t_semiflows, ReachOptions,
};
use wsnem_petri::{simulate, NetBuilder, PetriNet, SimConfig, TransitionKind};
use wsnem_stats::dist::Dist;
use wsnem_stats::rng::{Rng64, StreamFactory, Xoshiro256PlusPlus};

/// Compact random net description.
#[derive(Debug, Clone)]
struct CaseSpec {
    n_places: usize,
    initial: Vec<u32>,
    transitions: Vec<TransSpec>,
}

#[derive(Debug, Clone)]
struct TransSpec {
    kind_sel: u8,
    priority: u8,
    rate: f64,
    delay: f64,
    inputs: Vec<(usize, u32)>,
    outputs: Vec<(usize, u32)>,
    inhibitor: Option<(usize, u32)>,
}

fn arb_trans<R: Rng64>(rng: &mut R, n_places: usize) -> TransSpec {
    let arc = |rng: &mut R| {
        (
            rng.next_bounded(n_places as u64) as usize,
            1 + rng.next_bounded(2) as u32,
        )
    };
    let n_inputs = rng.next_bounded(3) as usize;
    let n_outputs = rng.next_bounded(3) as usize;
    TransSpec {
        kind_sel: rng.next_bounded(3) as u8,
        priority: 1 + rng.next_bounded(3) as u8,
        rate: 0.5 + 4.5 * rng.next_f64(),
        delay: 0.05 + 0.95 * rng.next_f64(),
        inputs: (0..n_inputs).map(|_| arc(rng)).collect(),
        outputs: (0..n_outputs).map(|_| arc(rng)).collect(),
        inhibitor: rng.next_bool(0.4).then(|| {
            (
                rng.next_bounded(n_places as u64) as usize,
                1 + rng.next_bounded(3) as u32,
            )
        }),
    }
}

fn arb_net<R: Rng64>(rng: &mut R) -> CaseSpec {
    let n_places = 2 + rng.next_bounded(4) as usize;
    let initial = (0..n_places).map(|_| rng.next_bounded(3) as u32).collect();
    let n_trans = 1 + rng.next_bounded(5) as usize;
    let transitions = (0..n_trans).map(|_| arb_trans(rng, n_places)).collect();
    CaseSpec {
        n_places,
        initial,
        transitions,
    }
}

fn build(spec: &CaseSpec) -> PetriNet {
    let mut b = NetBuilder::new();
    let places: Vec<_> = (0..spec.n_places)
        .map(|i| b.place(format!("p{i}"), spec.initial[i]))
        .collect();
    for (ti, t) in spec.transitions.iter().enumerate() {
        let kind = match t.kind_sel {
            0 => TransitionKind::Immediate {
                priority: t.priority,
                weight: 1.0,
            },
            1 => TransitionKind::exponential(t.rate),
            _ => TransitionKind::Timed {
                dist: Dist::Deterministic(t.delay),
                policy: wsnem_petri::TimedPolicy::RaceResample,
            },
        };
        let tid = b.transition(format!("t{ti}"), kind);
        let mut seen = std::collections::HashSet::new();
        for &(p, m) in &t.inputs {
            if seen.insert(p) {
                b.input_arc(places[p], tid, m);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &(p, m) in &t.outputs {
            if seen.insert(p) {
                b.output_arc(tid, places[p], m);
            }
        }
        if let Some((p, thresh)) = t.inhibitor {
            b.inhibitor_arc(places[p], tid, thresh);
        }
    }
    b.build().expect("generated nets are structurally valid")
}

const CASES: u64 = 64;

/// One reproducible (net, sim-seed) pair per case index.
fn case(i: u64) -> (CaseSpec, u64) {
    let factory = StreamFactory::new(0x9A9D_0008);
    let mut rng = factory.stream(i);
    let spec = arb_net(&mut rng);
    let seed = rng.next_bounded(1000);
    (spec, seed)
}

/// Every returned P-semiflow annihilates the incidence matrix from the
/// left (`yᵀ·C = 0`), is non-zero and is gcd-normalized.
#[test]
fn p_semiflows_annihilate_incidence() {
    for i in 0..CASES {
        let (spec, _) = case(i);
        let net = build(&spec);
        let c = incidence_matrix(&net);
        let Ok(flows) = p_semiflows(&net) else {
            continue; // invariant explosion budget — documented failure mode
        };
        for y in &flows {
            assert_eq!(y.len(), net.n_places(), "case {i}");
            assert!(y.iter().any(|&w| w > 0), "case {i}: zero semiflow");
            for t in 0..net.n_transitions() {
                let dot: i64 = c.iter().zip(y).map(|(row, &w)| w as i64 * row[t]).sum();
                assert_eq!(dot, 0, "case {i}: yᵀ·C ≠ 0 for y = {y:?}, column {t}");
            }
        }
    }
}

/// Every returned T-semiflow is a firing-count invariant (`C·x = 0`): firing
/// each transition `x[t]` times leaves every place's token count unchanged.
#[test]
fn t_semiflows_are_firing_count_invariants() {
    for i in 0..CASES {
        let (spec, _) = case(i);
        let net = build(&spec);
        let c = incidence_matrix(&net);
        let Ok(flows) = t_semiflows(&net) else {
            continue;
        };
        for x in &flows {
            assert_eq!(x.len(), net.n_transitions(), "case {i}");
            assert!(x.iter().any(|&w| w > 0), "case {i}: zero semiflow");
            for (p, row) in c.iter().enumerate() {
                let dot: i64 = row.iter().zip(x).map(|(&v, &w)| v * w as i64).sum();
                assert_eq!(dot, 0, "case {i}: C·x ≠ 0 for x = {x:?}, row {p}");
            }
        }
    }
}

/// P-semiflows observed along a live trajectory: the weighted token sum is
/// constant on the final marking of a real simulation run.
#[test]
fn p_semiflows_hold_along_simulation() {
    for i in 0..CASES {
        let (spec, seed) = case(i);
        let net = build(&spec);
        let Ok(flows) = p_semiflows(&net) else {
            continue;
        };
        let m0 = net.initial_marking();
        let expected: Vec<u64> = flows.iter().map(|y| m0.weighted_sum(y)).collect();
        let cfg = SimConfig {
            horizon: 25.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let Ok(out) = simulate(&net, &cfg, &[], &mut rng) else {
            continue; // vanishing/zeno loop on a degenerate random net
        };
        for (y, e) in flows.iter().zip(&expected) {
            assert_eq!(
                out.final_marking.weighted_sum(y),
                *e,
                "case {i}: semiflow {y:?} not conserved"
            );
        }
    }
}

/// Deadlock oracle: on nets whose full reachability graph fits the budget,
/// a simulation run ending in a marking that enables nothing implies the
/// graph reports a deadlock (and contains that very marking); a graph with
/// no deadlock implies the simulation can never stall.
#[test]
fn deadlock_verdict_matches_simulation() {
    let mut checked = 0u32;
    for i in 0..CASES {
        let (spec, seed) = case(i);
        let net = build(&spec);
        let opts = ReachOptions {
            max_markings: 20_000,
            max_tokens: 64,
        };
        let Ok(graph) = explore(&net, opts) else {
            continue; // unbounded / too large — verdict would be partial
        };
        let cfg = SimConfig {
            horizon: 25.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let Ok(out) = simulate(&net, &cfg, &[], &mut rng) else {
            continue;
        };
        checked += 1;
        let stalled = net.enabled_transitions(&out.final_marking).is_empty();
        if stalled {
            assert!(
                graph.has_deadlock(&net),
                "case {i}: simulation stalled at {} but exploration reports no deadlock",
                out.final_marking
            );
            assert!(
                graph.markings.contains(&out.final_marking),
                "case {i}: stalled marking missing from the reachability graph"
            );
        } else if !graph.has_deadlock(&net) {
            // No reachable dead marking at all: every marking the run
            // visits (in particular the final one) must enable something —
            // which `stalled == false` just confirmed.
        }
    }
    assert!(checked >= 10, "battery too weak: only {checked} cases ran");
}

/// Dead-transition oracle: any transition that actually fired in simulation
/// can be neither structurally dead nor dead in the full reachability graph;
/// structural deadness always implies behavioral deadness.
#[test]
fn dead_transition_verdict_matches_simulation() {
    let mut saw_dead = 0u32;
    for i in 0..CASES {
        let (spec, seed) = case(i);
        let net = build(&spec);
        let structural = structurally_dead_transitions(&net);
        let opts = ReachOptions {
            max_markings: 20_000,
            max_tokens: 64,
        };
        let behavioral = match explore(&net, opts) {
            Ok(graph) => {
                let dead = dead_transitions(&net, &graph);
                // Structural deadness is the weaker (budget-free) verdict:
                // everything it flags must also never fire in the graph.
                for &t in &structural {
                    assert!(
                        dead.contains(&t),
                        "case {i}: `{}` structurally dead but fires in the graph",
                        net.transition_name(t)
                    );
                }
                Some(dead)
            }
            Err(_) => None,
        };
        saw_dead += behavioral.as_ref().is_some_and(|d| !d.is_empty()) as u32;
        let cfg = SimConfig {
            horizon: 25.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let Ok(out) = simulate(&net, &cfg, &[], &mut rng) else {
            continue;
        };
        for t in net.transitions() {
            if out.firings[t.index()] == 0 {
                continue;
            }
            assert!(
                !structural.contains(&t),
                "case {i}: `{}` fired {} time(s) yet flagged structurally dead",
                net.transition_name(t),
                out.firings[t.index()]
            );
            if let Some(dead) = &behavioral {
                assert!(
                    !dead.contains(&t),
                    "case {i}: `{}` fired in simulation yet dead in the graph",
                    net.transition_name(t)
                );
            }
        }
    }
    assert!(saw_dead >= 3, "battery too weak: no dead transitions seen");
}

/// Deadlock witnesses are well-formed: the reported empty siphon is a real
/// siphon whose places are all unmarked at the dead marking, and every
/// inhibitor-blocked transition is input-satisfied but inhibited there.
#[test]
fn deadlock_witnesses_are_sound() {
    let mut witnesses = 0u32;
    for i in 0..CASES {
        let (spec, _) = case(i);
        let net = build(&spec);
        let opts = ReachOptions {
            max_markings: 20_000,
            max_tokens: 64,
        };
        let Ok(graph) = explore(&net, opts) else {
            continue;
        };
        for m in &graph.markings {
            if !net.enabled_transitions(m).is_empty() {
                continue;
            }
            witnesses += 1;
            let why = explain_dead_marking(&net, m);
            assert!(
                is_siphon(&net, &why.empty_siphon),
                "case {i}: witness is not a siphon"
            );
            for &p in &why.empty_siphon {
                assert_eq!(m.tokens(p), 0, "case {i}: witness place marked");
            }
            for &t in &why.inhibitor_blocked {
                assert!(
                    net.inputs(t).all(|(p, mult)| m.tokens(p) >= mult),
                    "case {i}: blocked transition not input-satisfied"
                );
                assert!(
                    net.inhibitors(t).any(|(p, th)| m.tokens(p) >= th),
                    "case {i}: blocked transition not actually inhibited"
                );
            }
        }
    }
    assert!(
        witnesses >= 5,
        "battery too weak: {witnesses} dead markings"
    );
}
