//! Property-based tests over randomly generated nets: the engine must
//! either simulate correctly (preserving every structural invariant) or
//! fail with one of its documented loop/bound errors — never panic, never
//! break a P-semiflow.
//!
//! Random generation is hand-rolled over the workspace RNG (the build is
//! offline, without proptest); each case is reproducible from its index.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_petri::analysis::{explore, p_semiflows, ReachOptions};
use wsnem_petri::{simulate, NetBuilder, PetriError, PetriNet, SimConfig, TransitionKind};
use wsnem_stats::dist::Dist;
use wsnem_stats::rng::{Rng64, StreamFactory, Xoshiro256PlusPlus};

/// Compact random net description.
#[derive(Debug, Clone)]
struct NetSpec {
    n_places: usize,
    initial: Vec<u32>,
    transitions: Vec<TransSpec>,
}

#[derive(Debug, Clone)]
struct TransSpec {
    kind_sel: u8,
    priority: u8,
    rate: f64,
    delay: f64,
    inputs: Vec<(usize, u32)>,
    outputs: Vec<(usize, u32)>,
    inhibitor: Option<(usize, u32)>,
}

fn uniform_f64<R: Rng64>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn arb_trans<R: Rng64>(rng: &mut R, n_places: usize) -> TransSpec {
    let arc = |rng: &mut R| {
        (
            rng.next_bounded(n_places as u64) as usize,
            1 + rng.next_bounded(2) as u32,
        )
    };
    let n_inputs = 1 + rng.next_bounded(2) as usize;
    let n_outputs = rng.next_bounded(3) as usize;
    TransSpec {
        kind_sel: rng.next_bounded(3) as u8,
        priority: 1 + rng.next_bounded(3) as u8,
        rate: uniform_f64(rng, 0.5, 5.0),
        delay: uniform_f64(rng, 0.05, 1.0),
        inputs: (0..n_inputs).map(|_| arc(rng)).collect(),
        outputs: (0..n_outputs).map(|_| arc(rng)).collect(),
        inhibitor: rng.next_bool(0.5).then(|| {
            (
                rng.next_bounded(n_places as u64) as usize,
                1 + rng.next_bounded(3) as u32,
            )
        }),
    }
}

fn arb_net<R: Rng64>(rng: &mut R) -> NetSpec {
    let n_places = 2 + rng.next_bounded(4) as usize;
    let initial = (0..n_places).map(|_| rng.next_bounded(4) as u32).collect();
    let n_trans = 1 + rng.next_bounded(5) as usize;
    let transitions = (0..n_trans).map(|_| arb_trans(rng, n_places)).collect();
    NetSpec {
        n_places,
        initial,
        transitions,
    }
}

fn build(spec: &NetSpec) -> PetriNet {
    let mut b = NetBuilder::new();
    let places: Vec<_> = (0..spec.n_places)
        .map(|i| b.place(format!("p{i}"), spec.initial[i]))
        .collect();
    for (ti, t) in spec.transitions.iter().enumerate() {
        let kind = match t.kind_sel {
            0 => TransitionKind::Immediate {
                priority: t.priority,
                weight: 1.0,
            },
            1 => TransitionKind::exponential(t.rate),
            _ => TransitionKind::Timed {
                dist: Dist::Deterministic(t.delay),
                policy: wsnem_petri::TimedPolicy::RaceResample,
            },
        };
        let tid = b.transition(format!("t{ti}"), kind);
        // Dedupe arcs per kind (builder rejects duplicates by design).
        let mut seen = std::collections::HashSet::new();
        for &(p, m) in &t.inputs {
            if seen.insert(p) {
                b.input_arc(places[p], tid, m);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &(p, m) in &t.outputs {
            if seen.insert(p) {
                b.output_arc(tid, places[p], m);
            }
        }
        if let Some((p, thresh)) = t.inhibitor {
            b.inhibitor_arc(places[p], tid, thresh);
        }
    }
    b.build().expect("generated nets are structurally valid")
}

const CASES: u64 = 48;

/// One reproducible (net, sim-seed) pair per case index.
fn case(i: u64) -> (NetSpec, u64) {
    let factory = StreamFactory::new(0x9A9D_0001);
    let mut rng = factory.stream(i);
    let spec = arb_net(&mut rng);
    let seed = rng.next_bounded(1000);
    (spec, seed)
}

/// The engine never panics; success preserves all P-semiflows.
#[test]
fn simulation_is_total_and_conserves_invariants() {
    for i in 0..CASES {
        let (spec, seed) = case(i);
        let net = build(&spec);
        let invariants = p_semiflows(&net).unwrap();
        let m0 = net.initial_marking();
        let expected: Vec<u64> = invariants.iter().map(|x| m0.weighted_sum(x)).collect();

        let cfg = SimConfig {
            horizon: 50.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        match simulate(&net, &cfg, &[], &mut rng) {
            Ok(out) => {
                for (x, e) in invariants.iter().zip(&expected) {
                    assert_eq!(
                        out.final_marking.weighted_sum(x),
                        *e,
                        "case {i}: P-invariant broken: weights {x:?}"
                    );
                }
                // Time accounting is exact.
                assert!((out.time_observed - 50.0).abs() < 1e-9, "case {i}");
                // Mean token counts are non-negative and bounded by the
                // invariant value where one applies.
                for mean in &out.place_means {
                    assert!(*mean >= 0.0, "case {i}");
                }
            }
            Err(PetriError::VanishingLoop { .. }) | Err(PetriError::ZenoLoop { .. }) => {
                // Documented failure modes for degenerate random nets.
            }
            Err(other) => panic!("case {i}: unexpected error: {other}"),
        }
    }
}

/// When bounded exploration succeeds, the simulator's final marking is
/// one of the reachable markings (engine and reachability agree on
/// semantics).
#[test]
fn final_marking_is_reachable() {
    for i in 0..CASES {
        let (spec, seed) = case(i);
        let net = build(&spec);
        let opts = ReachOptions {
            max_markings: 20_000,
            max_tokens: 64,
        };
        let Ok(graph) = explore(&net, opts) else {
            continue; // unbounded / too large — nothing to check
        };
        let cfg = SimConfig {
            horizon: 20.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let Ok(out) = simulate(&net, &cfg, &[], &mut rng) else {
            continue;
        };
        assert!(
            graph.markings.contains(&out.final_marking),
            "case {i}: final marking {} not in the {}-marking reachability graph",
            out.final_marking,
            graph.len()
        );
    }
}

/// Reward means are convex combinations: an indicator reward's time
/// average lies in [0, 1] for any net and seed.
#[test]
fn indicator_rewards_bounded() {
    for i in 0..CASES {
        let (spec, seed) = case(i);
        let net = build(&spec);
        let p0 = net.places().next().expect("at least two places");
        let reward = wsnem_petri::Reward::indicator("p0 marked", move |m| m.tokens(p0) > 0);
        let cfg = SimConfig {
            horizon: 30.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        if let Ok(out) = simulate(&net, &cfg, &[reward], &mut rng) {
            assert!(
                (0.0..=1.0).contains(&out.reward_means[0]),
                "case {i}: reward mean {}",
                out.reward_means[0]
            );
        }
    }
}
