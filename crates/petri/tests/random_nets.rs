//! Property-based tests over randomly generated nets: the engine must
//! either simulate correctly (preserving every structural invariant) or
//! fail with one of its documented loop/bound errors — never panic, never
//! break a P-semiflow.

use proptest::prelude::*;

use wsnem_petri::analysis::{explore, p_semiflows, ReachOptions};
use wsnem_petri::{
    simulate, NetBuilder, PetriError, PetriNet, SimConfig, TransitionKind,
};
use wsnem_stats::dist::Dist;
use wsnem_stats::rng::Xoshiro256PlusPlus;

/// Compact random net description.
#[derive(Debug, Clone)]
struct NetSpec {
    n_places: usize,
    initial: Vec<u32>,
    transitions: Vec<TransSpec>,
}

#[derive(Debug, Clone)]
struct TransSpec {
    kind_sel: u8,
    priority: u8,
    rate: f64,
    delay: f64,
    inputs: Vec<(usize, u32)>,
    outputs: Vec<(usize, u32)>,
    inhibitor: Option<(usize, u32)>,
}

fn arb_trans(n_places: usize) -> impl Strategy<Value = TransSpec> {
    let arc = (0..n_places, 1u32..3);
    (
        0u8..3,
        1u8..4,
        0.5f64..5.0,
        0.05f64..1.0,
        proptest::collection::vec(arc.clone(), 1..3),
        proptest::collection::vec(arc.clone(), 0..3),
        proptest::option::of((0..n_places, 1u32..4)),
    )
        .prop_map(
            |(kind_sel, priority, rate, delay, inputs, outputs, inhibitor)| TransSpec {
                kind_sel,
                priority,
                rate,
                delay,
                inputs,
                outputs,
                inhibitor,
            },
        )
}

fn arb_net() -> impl Strategy<Value = NetSpec> {
    (2usize..6)
        .prop_flat_map(|n_places| {
            (
                Just(n_places),
                proptest::collection::vec(0u32..4, n_places),
                proptest::collection::vec(arb_trans(n_places), 1..6),
            )
        })
        .prop_map(|(n_places, initial, transitions)| NetSpec {
            n_places,
            initial,
            transitions,
        })
}

fn build(spec: &NetSpec) -> PetriNet {
    let mut b = NetBuilder::new();
    let places: Vec<_> = (0..spec.n_places)
        .map(|i| b.place(format!("p{i}"), spec.initial[i]))
        .collect();
    for (ti, t) in spec.transitions.iter().enumerate() {
        let kind = match t.kind_sel {
            0 => TransitionKind::Immediate {
                priority: t.priority,
                weight: 1.0,
            },
            1 => TransitionKind::exponential(t.rate),
            _ => TransitionKind::Timed {
                dist: Dist::Deterministic(t.delay),
                policy: wsnem_petri::TimedPolicy::RaceResample,
            },
        };
        let tid = b.transition(format!("t{ti}"), kind);
        // Dedupe arcs per kind (builder rejects duplicates by design).
        let mut seen = std::collections::HashSet::new();
        for &(p, m) in &t.inputs {
            if seen.insert(p) {
                b.input_arc(places[p], tid, m);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &(p, m) in &t.outputs {
            if seen.insert(p) {
                b.output_arc(tid, places[p], m);
            }
        }
        if let Some((p, thresh)) = t.inhibitor {
            b.inhibitor_arc(places[p], tid, thresh);
        }
    }
    b.build().expect("generated nets are structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine never panics; success preserves all P-semiflows.
    #[test]
    fn simulation_is_total_and_conserves_invariants(spec in arb_net(), seed in 0u64..1000) {
        let net = build(&spec);
        let invariants = p_semiflows(&net).unwrap();
        let m0 = net.initial_marking();
        let expected: Vec<u64> = invariants.iter().map(|x| m0.weighted_sum(x)).collect();

        let cfg = SimConfig {
            horizon: 50.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        match simulate(&net, &cfg, &[], &mut rng) {
            Ok(out) => {
                for (x, e) in invariants.iter().zip(&expected) {
                    prop_assert_eq!(
                        out.final_marking.weighted_sum(x), *e,
                        "P-invariant broken: weights {:?}", x
                    );
                }
                // Time accounting is exact.
                prop_assert!((out.time_observed - 50.0).abs() < 1e-9);
                // Mean token counts are non-negative and bounded by the
                // invariant value where one applies.
                for mean in &out.place_means {
                    prop_assert!(*mean >= 0.0);
                }
            }
            Err(PetriError::VanishingLoop { .. }) | Err(PetriError::ZenoLoop { .. }) => {
                // Documented failure modes for degenerate random nets.
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// When bounded exploration succeeds, the simulator's final marking is
    /// one of the reachable markings (engine and reachability agree on
    /// semantics).
    #[test]
    fn final_marking_is_reachable(spec in arb_net(), seed in 0u64..1000) {
        let net = build(&spec);
        let opts = ReachOptions {
            max_markings: 20_000,
            max_tokens: 64,
        };
        let Ok(graph) = explore(&net, opts) else {
            return Ok(()); // unbounded / too large — nothing to check
        };
        let cfg = SimConfig {
            horizon: 20.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let Ok(out) = simulate(&net, &cfg, &[], &mut rng) else {
            return Ok(());
        };
        prop_assert!(
            graph.markings.contains(&out.final_marking),
            "final marking {} not in the {}-marking reachability graph",
            out.final_marking,
            graph.len()
        );
    }

    /// Reward means are convex combinations: an indicator reward's time
    /// average lies in [0, 1] for any net and seed.
    #[test]
    fn indicator_rewards_bounded(spec in arb_net(), seed in 0u64..1000) {
        let net = build(&spec);
        let p0 = net.places().next().expect("at least two places");
        let reward = wsnem_petri::Reward::indicator("p0 marked", move |m| m.tokens(p0) > 0);
        let cfg = SimConfig {
            horizon: 30.0,
            max_vanishing_chain: 10_000,
            zeno_guard: 10_000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        if let Ok(out) = simulate(&net, &cfg, &[reward], &mut rng) {
            prop_assert!((0.0..=1.0).contains(&out.reward_means[0]));
        }
    }
}
