//! Parallel independent replications of the token game.
//!
//! Mirrors the DES replication runner: replication `i` uses RNG stream `i`
//! from the master seed; reduction is in replication order; results are
//! identical for any thread count.

use wsnem_stats::ci::ConfidenceInterval;
use wsnem_stats::online::Welford;
use wsnem_stats::rng::StreamFactory;
use wsnem_stats::StatsError;

use crate::error::PetriError;
use crate::net::PetriNet;
use crate::sim::{simulate, Reward, SimConfig, SimOutput};

/// Cross-replication summary of Petri-net runs.
#[derive(Debug, Clone)]
pub struct PnReplicationSummary {
    /// Per-replication outputs in replication order.
    pub outputs: Vec<SimOutput>,
    /// Across-replication stats of each reward's time average.
    pub reward_stats: Vec<Welford>,
    /// Across-replication stats of each place's mean token count.
    pub place_stats: Vec<Welford>,
}

impl PnReplicationSummary {
    /// Mean of a reward's time averages across replications.
    pub fn reward_mean(&self, reward_index: usize) -> f64 {
        self.reward_stats[reward_index].mean()
    }

    /// Confidence interval of a reward across replications.
    pub fn reward_ci(
        &self,
        reward_index: usize,
        level: f64,
    ) -> Result<ConfidenceInterval, StatsError> {
        ConfidenceInterval::from_welford(&self.reward_stats[reward_index], level)
    }

    /// Mean tokens of a place across replications.
    pub fn place_mean(&self, place_index: usize) -> f64 {
        self.place_stats[place_index].mean()
    }

    /// Number of replications.
    pub fn replications(&self) -> usize {
        self.outputs.len()
    }
}

/// Run `n` independent replications, spreading them over `threads` OS
/// threads (`None` = available parallelism).
pub fn simulate_replications(
    net: &PetriNet,
    cfg: &SimConfig,
    rewards: &[Reward],
    n: usize,
    master_seed: u64,
    threads: Option<usize>,
) -> Result<PnReplicationSummary, PetriError> {
    assert!(n > 0, "need at least one replication");
    cfg.validate()?;
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let factory = StreamFactory::new(master_seed);

    let mut slots: Vec<Option<Result<SimOutput, PetriError>>> = vec![None; n];
    if threads == 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            let mut rng = factory.stream(i as u64);
            *slot = Some(simulate(net, cfg, rewards, &mut rng));
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (k, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (j, slot) in chunk_slots.iter_mut().enumerate() {
                        let rep = k * chunk + j;
                        let mut rng = factory.stream(rep as u64);
                        *slot = Some(simulate(net, cfg, rewards, &mut rng));
                    }
                });
            }
        });
    }

    let mut outputs = Vec::with_capacity(n);
    for slot in slots {
        // Both branches above write every slot: the serial loop visits each
        // index, and `chunks_mut` partitions the whole slice across threads.
        let Some(output) = slot else {
            unreachable!("replication slot left unfilled")
        };
        outputs.push(output?);
    }
    let mut reward_stats = vec![Welford::new(); rewards.len()];
    let mut place_stats = vec![Welford::new(); net.n_places()];
    for out in &outputs {
        for (w, &v) in reward_stats.iter_mut().zip(&out.reward_means) {
            w.push(v);
        }
        for (w, &v) in place_stats.iter_mut().zip(&out.place_means) {
            w.push(v);
        }
    }
    Ok(PnReplicationSummary {
        outputs,
        reward_stats,
        place_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    fn mm1_net() -> (PetriNet, Reward) {
        let mut b = NetBuilder::new();
        let q = b.place("Queue", 0);
        let arrive = b.exponential("arrive", 1.0);
        let serve = b.exponential("serve", 2.0);
        b.output_arc(arrive, q, 1);
        b.input_arc(q, serve, 1);
        let net = b.build().unwrap();
        let busy = Reward::indicator("busy", move |m| m.tokens(q) > 0);
        (net, busy)
    }

    #[test]
    fn parallel_equals_sequential() {
        let (net, busy) = mm1_net();
        let cfg = SimConfig::for_horizon(300.0);
        let rewards = vec![busy];
        let seq = simulate_replications(&net, &cfg, &rewards, 8, 99, Some(1)).unwrap();
        let par = simulate_replications(&net, &cfg, &rewards, 8, 99, Some(4)).unwrap();
        assert_eq!(seq.outputs, par.outputs);
    }

    #[test]
    fn summary_converges_to_theory() {
        let (net, busy) = mm1_net();
        let cfg = SimConfig {
            horizon: 5000.0,
            warmup: 200.0,
            ..SimConfig::default()
        };
        let rewards = vec![busy];
        let sum = simulate_replications(&net, &cfg, &rewards, 16, 7, None).unwrap();
        assert_eq!(sum.replications(), 16);
        // ρ = 0.5, L = 1.
        let ci = sum.reward_ci(0, 0.99).unwrap();
        assert!(
            ci.contains(0.5),
            "utilization CI [{}, {}]",
            ci.low(),
            ci.high()
        );
        assert!(
            (sum.place_mean(0) - 1.0).abs() < 0.15,
            "{}",
            sum.place_mean(0)
        );
        assert!((sum.reward_mean(0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn config_error_propagates() {
        let (net, _) = mm1_net();
        let cfg = SimConfig {
            horizon: -1.0,
            ..SimConfig::default()
        };
        assert!(simulate_replications(&net, &cfg, &[], 2, 1, Some(1)).is_err());
    }

    #[test]
    fn simulation_error_propagates_from_worker() {
        // Immediate loop net: every replication errors; the first error wins.
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.immediate("a", 1, 1.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        let t10 = b.immediate("b", 1, 1.0);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 10.0,
            max_vanishing_chain: 100,
            ..SimConfig::default()
        };
        let err = simulate_replications(&net, &cfg, &[], 4, 1, Some(2)).unwrap_err();
        assert!(matches!(err, PetriError::VanishingLoop { .. }));
    }
}
