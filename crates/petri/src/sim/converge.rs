//! Sequential stopping: replicate until the reward estimates stabilize.
//!
//! The paper (§2, §6) notes that Petri nets "require that the modeled
//! system be simulated for extended periods of time so that the steady
//! state probability is reached" — but never says how long is long enough.
//! This module makes that precise: replications are added in rounds until
//! every watched reward's Student-t confidence interval is relatively
//! tighter than a target, or the replication budget runs out.
//!
//! Stopping decisions look only at replication means (which are i.i.d.), so
//! the procedure stays statistically honest and — because replication `i`
//! always consumes stream `i` — fully deterministic.

use wsnem_stats::ci::ConfidenceInterval;

use crate::error::PetriError;
use crate::net::PetriNet;
use crate::sim::replication::{simulate_replications, PnReplicationSummary};
use crate::sim::{Reward, SimConfig};

/// Stopping rule for [`simulate_until_precise`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionTarget {
    /// Confidence level of the intervals (e.g. 0.95).
    pub level: f64,
    /// Target relative half-width (half-width / |mean|).
    pub rel_half_width: f64,
    /// Rewards with |mean| below this are judged by *absolute* half-width
    /// instead (relative precision is meaningless at ≈0 means, e.g. the
    /// PowerUp fraction at D = 1 ms).
    pub near_zero: f64,
    /// Replications per round.
    pub batch: usize,
    /// Minimum total replications before stopping is allowed.
    pub min_replications: usize,
    /// Hard cap on total replications.
    pub max_replications: usize,
}

impl Default for PrecisionTarget {
    fn default() -> Self {
        Self {
            level: 0.95,
            rel_half_width: 0.05,
            near_zero: 1e-3,
            batch: 8,
            min_replications: 8,
            max_replications: 512,
        }
    }
}

impl PrecisionTarget {
    /// Validate the target.
    pub fn validate(&self) -> Result<(), PetriError> {
        if !(0.0 < self.level && self.level < 1.0) {
            return Err(PetriError::InvalidConfig {
                what: "precision.level",
                constraint: "in (0, 1)",
                value: self.level,
            });
        }
        if !(self.rel_half_width > 0.0) {
            return Err(PetriError::InvalidConfig {
                what: "precision.rel_half_width",
                constraint: "> 0",
                value: self.rel_half_width,
            });
        }
        if self.batch == 0 || self.max_replications < self.min_replications.max(2) {
            return Err(PetriError::InvalidConfig {
                what: "precision.budget",
                constraint: "batch >= 1, max >= max(min, 2)",
                value: self.batch as f64,
            });
        }
        Ok(())
    }
}

/// Result of a sequential-precision run.
#[derive(Debug, Clone)]
pub struct ConvergedRun {
    /// The final cross-replication summary.
    pub summary: PnReplicationSummary,
    /// Whether every watched reward met the target (false ⇒ budget ran out).
    pub converged: bool,
    /// Confidence intervals of each reward at stop time.
    pub intervals: Vec<ConfidenceInterval>,
}

/// Replicate `net` in rounds until every reward in `rewards` meets the
/// precision target (or the budget caps out).
pub fn simulate_until_precise(
    net: &PetriNet,
    cfg: &SimConfig,
    rewards: &[Reward],
    target: PrecisionTarget,
    master_seed: u64,
    threads: Option<usize>,
) -> Result<ConvergedRun, PetriError> {
    target.validate()?;
    cfg.validate()?;
    let mut n = target.min_replications.max(2);
    loop {
        // Re-simulating from replication 0 keeps the estimate a pure
        // function of (seed, n); stream i is cached work we accept to redo
        // for simplicity — rounds grow geometrically so total work is at
        // most 2× the final run. (simulate_replications is itself parallel.)
        let summary = simulate_replications(net, cfg, rewards, n, master_seed, threads)?;
        let mut intervals = Vec::with_capacity(rewards.len());
        let mut all_met = true;
        for stats in &summary.reward_stats {
            let ci =
                ConfidenceInterval::from_welford(stats, target.level).map_err(PetriError::Stats)?;
            let met = if ci.mean.abs() < target.near_zero {
                ci.half_width <= target.near_zero
            } else {
                ci.relative_half_width() <= target.rel_half_width
            };
            all_met &= met;
            intervals.push(ci);
        }
        if all_met || n >= target.max_replications {
            return Ok(ConvergedRun {
                summary,
                converged: all_met,
                intervals,
            });
        }
        // Geometric growth (at least one batch) bounds total redone work.
        n = (n + target.batch).max(n * 2).min(target.max_replications);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mm1_net;
    use crate::sim::Reward;

    fn busy_reward(net: &PetriNet) -> Reward {
        let q = net.find_place("Queue").unwrap();
        Reward::indicator("busy", move |m| m.tokens(q) > 0)
    }

    #[test]
    fn converges_on_mm1_utilization() {
        let (net, _) = mm1_net(1.0, 2.0).unwrap();
        let rewards = vec![busy_reward(&net)];
        let cfg = SimConfig {
            horizon: 2000.0,
            warmup: 100.0,
            ..SimConfig::default()
        };
        let run = simulate_until_precise(&net, &cfg, &rewards, PrecisionTarget::default(), 7, None)
            .unwrap();
        assert!(run.converged);
        let ci = &run.intervals[0];
        assert!(ci.contains(0.5), "ρ CI [{}, {}]", ci.low(), ci.high());
        assert!(ci.relative_half_width() <= 0.05);
        assert!(run.summary.replications() >= 8);
    }

    #[test]
    fn budget_cap_reports_unconverged() {
        let (net, _) = mm1_net(1.0, 1.05).unwrap(); // ρ ≈ 0.95: noisy
        let rewards = vec![busy_reward(&net)];
        let cfg = SimConfig::for_horizon(50.0); // tiny horizon → high variance
        let target = PrecisionTarget {
            rel_half_width: 0.001,
            max_replications: 8,
            min_replications: 4,
            ..PrecisionTarget::default()
        };
        let run = simulate_until_precise(&net, &cfg, &rewards, target, 3, Some(2)).unwrap();
        assert!(!run.converged, "impossible target must hit the cap");
        assert_eq!(run.summary.replications(), 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, _) = mm1_net(1.0, 2.0).unwrap();
        let rewards = vec![busy_reward(&net)];
        let cfg = SimConfig::for_horizon(500.0);
        let target = PrecisionTarget {
            rel_half_width: 0.1,
            ..PrecisionTarget::default()
        };
        let a = simulate_until_precise(&net, &cfg, &rewards, target, 42, Some(1)).unwrap();
        let b = simulate_until_precise(&net, &cfg, &rewards, target, 42, Some(4)).unwrap();
        assert_eq!(a.summary.outputs, b.summary.outputs);
        assert_eq!(a.converged, b.converged);
    }

    #[test]
    fn near_zero_rewards_judged_absolutely() {
        // A reward that is almost always 0 (queue beyond 50 jobs at ρ=0.5)
        // would never meet a *relative* target; the absolute rule handles it.
        let (net, q) = mm1_net(1.0, 2.0).unwrap();
        let deep = Reward::indicator("deep", move |m| m.tokens(q) > 50);
        let cfg = SimConfig::for_horizon(500.0);
        let run =
            simulate_until_precise(&net, &cfg, &[deep], PrecisionTarget::default(), 1, Some(2))
                .unwrap();
        assert!(run.converged);
        assert!(run.intervals[0].mean < 1e-3);
    }

    #[test]
    fn target_validation() {
        assert!(PrecisionTarget {
            level: 1.5,
            ..PrecisionTarget::default()
        }
        .validate()
        .is_err());
        assert!(PrecisionTarget {
            rel_half_width: 0.0,
            ..PrecisionTarget::default()
        }
        .validate()
        .is_err());
        assert!(PrecisionTarget {
            batch: 0,
            ..PrecisionTarget::default()
        }
        .validate()
        .is_err());
        assert!(PrecisionTarget {
            min_replications: 100,
            max_replications: 10,
            ..PrecisionTarget::default()
        }
        .validate()
        .is_err());
    }
}
