//! EDSPN simulation: configuration, rewards, outputs, the token-game engine
//! and parallel replications.

mod converge;
mod engine;
#[cfg(test)]
mod reference;
mod replication;

pub use converge::{simulate_until_precise, ConvergedRun, PrecisionTarget};
pub use engine::{simulate, simulate_observed};
pub use replication::{simulate_replications, PnReplicationSummary};

use std::sync::Arc;

use crate::error::PetriError;
use crate::marking::Marking;
use crate::net::PlaceId;

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Simulated horizon (seconds of model time).
    pub horizon: f64,
    /// Warm-up period; statistics reset at this time.
    pub warmup: f64,
    /// Abort threshold for consecutive immediate firings at one instant
    /// (vanishing-loop detection).
    pub max_vanishing_chain: usize,
    /// Abort threshold for consecutive zero-delay *timed* firings at one
    /// instant (Zeno-loop detection).
    pub zeno_guard: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            horizon: 1000.0,
            warmup: 0.0,
            max_vanishing_chain: 1_000_000,
            zeno_guard: 1_000_000,
        }
    }
}

impl SimConfig {
    /// Config with the given horizon and defaults elsewhere.
    pub fn for_horizon(horizon: f64) -> Self {
        Self {
            horizon,
            ..Self::default()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), PetriError> {
        if !(self.horizon > 0.0) || !self.horizon.is_finite() {
            return Err(PetriError::InvalidConfig {
                what: "horizon",
                constraint: "> 0 and finite",
                value: self.horizon,
            });
        }
        if !(0.0..self.horizon).contains(&self.warmup) {
            return Err(PetriError::InvalidConfig {
                what: "warmup",
                constraint: "0 <= warmup < horizon",
                value: self.warmup,
            });
        }
        if self.max_vanishing_chain == 0 || self.zeno_guard == 0 {
            return Err(PetriError::InvalidConfig {
                what: "loop guards",
                constraint: ">= 1",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// A reward: an arbitrary function of the marking whose time average the
/// simulator reports. The paper's "steady state percentage of time in state
/// X" measures are indicator rewards over the tangible marking.
#[derive(Clone)]
pub struct Reward {
    /// Display name.
    pub name: String,
    f: Arc<dyn Fn(&Marking) -> f64 + Send + Sync>,
}

impl std::fmt::Debug for Reward {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reward").field("name", &self.name).finish()
    }
}

impl Reward {
    /// Arbitrary marking function.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// Token count of one place (its time average = mean tokens — the
    /// statistic the paper reads off TimeNET).
    pub fn tokens(name: impl Into<String>, place: PlaceId) -> Self {
        Self::new(name, move |m: &Marking| m.tokens(place) as f64)
    }

    /// Indicator (0/1) reward — time average is the probability of the
    /// predicate holding.
    pub fn indicator(
        name: impl Into<String>,
        pred: impl Fn(&Marking) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self::new(name, move |m: &Marking| if pred(m) { 1.0 } else { 0.0 })
    }

    /// Evaluate on a marking.
    #[inline]
    pub fn eval(&self, m: &Marking) -> f64 {
        (self.f)(m)
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// Observation-window length (horizon − warmup).
    pub time_observed: f64,
    /// Time-averaged token count per place (canonical place order).
    pub place_means: Vec<f64>,
    /// Time-averaged reward values (same order as the reward slice).
    pub reward_means: Vec<f64>,
    /// Post-warmup firing count per transition.
    pub firings: Vec<u64>,
    /// Marking at the horizon.
    pub final_marking: Marking,
}

impl SimOutput {
    /// Firing throughput (firings per unit time) of a transition index.
    pub fn throughput(&self, transition_index: usize) -> f64 {
        if self.time_observed > 0.0 {
            self.firings[transition_index] as f64 / self.time_observed
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(SimConfig::default().validate().is_ok());
        assert!(SimConfig::for_horizon(10.0).validate().is_ok());
        assert!(SimConfig {
            horizon: 0.0,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            horizon: f64::INFINITY,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            warmup: 1000.0,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            max_vanishing_chain: 0,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn reward_kinds() {
        let m = Marking::new(vec![2, 0]);
        let r = Reward::tokens("p0", PlaceId(0));
        assert_eq!(r.eval(&m), 2.0);
        let r = Reward::indicator("empty p1", |m: &Marking| m.tokens(PlaceId(1)) == 0);
        assert_eq!(r.eval(&m), 1.0);
        let r = Reward::new("sum", |m: &Marking| m.total_tokens() as f64);
        assert_eq!(r.eval(&m), 2.0);
        assert!(format!("{r:?}").contains("sum"));
        assert_eq!(r.clone().name, "sum");
    }
}
