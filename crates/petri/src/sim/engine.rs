//! The EDSPN token game.
//!
//! Execution alternates two phases:
//!
//! 1. **Vanishing resolution** — while any immediate transition is enabled,
//!    fire one (highest priority first; weight-proportional choice among
//!    ties) without advancing the clock. A chain longer than
//!    `max_vanishing_chain` aborts with [`PetriError::VanishingLoop`].
//! 2. **Tangible step** — every enabled timed transition holds a sampled
//!    firing time; the earliest fires and the clock advances. The race
//!    policy decides what happens to clocks on disabling
//!    ([`TimedPolicy::RaceResample`] discards, [`TimedPolicy::AgeMemory`]
//!    freezes the remaining time).
//!
//! Statistics (place token averages, marking rewards) integrate the
//! piecewise-constant tangible marking exactly between events; vanishing
//! markings have zero width and contribute nothing, matching standard
//! GSPN/EDSPN semantics.

use wsnem_stats::dist::Sample;
use wsnem_stats::rng::Rng64;

use crate::error::PetriError;
use crate::net::{PetriNet, TimedPolicy, TransitionKind};
use crate::sim::{Reward, SimConfig, SimOutput};

/// Run one replication of the token game.
pub fn simulate<R: Rng64 + ?Sized>(
    net: &PetriNet,
    cfg: &SimConfig,
    rewards: &[Reward],
    rng: &mut R,
) -> Result<SimOutput, PetriError> {
    cfg.validate()?;
    Engine::new(net, cfg, rewards, rng).run()
}

struct Engine<'a, R: Rng64 + ?Sized> {
    net: &'a PetriNet,
    cfg: &'a SimConfig,
    rewards: &'a [Reward],
    rng: &'a mut R,

    marking: crate::marking::Marking,
    now: f64,
    enabled: Vec<bool>,
    /// Sampled absolute firing time per transition (timed only).
    timers: Vec<Option<f64>>,
    /// Frozen remaining delay for AgeMemory transitions while disabled.
    age_left: Vec<Option<f64>>,

    // Statistics.
    stats_start: f64,
    place_integral: Vec<f64>,
    reward_integral: Vec<f64>,
    reward_value: Vec<f64>,
    firings: Vec<u64>,
    warmup_done: bool,

    // Scratch buffers (no allocation in the hot loop).
    changed: Vec<u32>,
    candidates: Vec<u32>,
}

impl<'a, R: Rng64 + ?Sized> Engine<'a, R> {
    fn new(net: &'a PetriNet, cfg: &'a SimConfig, rewards: &'a [Reward], rng: &'a mut R) -> Self {
        let marking = net.initial_marking();
        let nt = net.n_transitions();
        Self {
            net,
            cfg,
            rewards,
            rng,
            marking,
            now: 0.0,
            enabled: vec![false; nt],
            timers: vec![None; nt],
            age_left: vec![None; nt],
            stats_start: 0.0,
            place_integral: vec![0.0; net.n_places()],
            reward_integral: vec![0.0; rewards.len()],
            reward_value: vec![0.0; rewards.len()],
            firings: vec![0; nt],
            warmup_done: cfg.warmup == 0.0,
            changed: Vec::with_capacity(8),
            candidates: Vec::with_capacity(8),
        }
    }

    /// Recompute enabling of transition `t` and maintain its timer according
    /// to the race policy.
    fn refresh_transition(&mut self, t: u32) {
        let ti = crate::net::TransitionId(t);
        let was = self.enabled[t as usize];
        let is = self.net.is_enabled(&self.marking, ti);
        if was == is {
            return;
        }
        self.enabled[t as usize] = is;
        match self.net.kind(ti) {
            TransitionKind::Immediate { .. } => {}
            TransitionKind::Timed { dist, policy } => {
                if is {
                    let delay = match policy {
                        TimedPolicy::RaceResample => dist.sample(self.rng).max(0.0),
                        TimedPolicy::AgeMemory => self.age_left[t as usize]
                            .take()
                            .unwrap_or_else(|| dist.sample(self.rng).max(0.0)),
                    };
                    self.timers[t as usize] = Some(self.now + delay);
                } else {
                    let fire_at = self.timers[t as usize].take();
                    if policy == TimedPolicy::AgeMemory {
                        if let Some(at) = fire_at {
                            self.age_left[t as usize] = Some((at - self.now).max(0.0));
                        }
                    }
                }
            }
        }
    }

    /// Refresh all transitions (used at start-up).
    fn refresh_all(&mut self) {
        for t in 0..self.net.n_transitions() as u32 {
            self.refresh_transition(t);
        }
    }

    /// After firing, refresh the fired transition and everything adjacent to
    /// the changed places.
    fn propagate(&mut self, fired: u32) {
        // The fired transition consumed its own timer; force recompute.
        self.enabled[fired as usize] = false;
        self.timers[fired as usize] = None;
        self.refresh_transition(fired);
        // Enabling of neighbours of changed places may have flipped.
        let mut i = 0;
        while i < self.changed.len() {
            let p = self.changed[i];
            for &t in self.net.affected_by(p) {
                if t != fired {
                    self.refresh_transition(t);
                }
            }
            i += 1;
        }
    }

    /// Fire one enabled immediate transition if any; returns whether one
    /// fired.
    fn fire_one_immediate(&mut self) -> bool {
        self.candidates.clear();
        let mut best_priority = 0u8;
        // `immediate_indices` is sorted highest priority first, so the
        // first enabled transition fixes the winning priority group and the
        // scan stops at the group's end instead of walking every immediate.
        for &t in self.net.immediate_indices() {
            if !self.enabled[t as usize] {
                continue;
            }
            let TransitionKind::Immediate { priority, .. } =
                self.net.kind(crate::net::TransitionId(t))
            else {
                unreachable!("immediate_indices only lists immediates");
            };
            if self.candidates.is_empty() {
                self.candidates.push(t);
                best_priority = priority;
            } else if priority == best_priority {
                self.candidates.push(t);
            } else {
                break;
            }
        }
        let chosen = match self.candidates.len() {
            0 => return false,
            1 => self.candidates[0],
            _ => {
                // Weight-proportional random choice.
                let total: f64 = self
                    .candidates
                    .iter()
                    .map(|&t| match self.net.kind(crate::net::TransitionId(t)) {
                        TransitionKind::Immediate { weight, .. } => weight,
                        _ => unreachable!(),
                    })
                    .sum();
                let mut u = self.rng.next_f64() * total;
                let mut pick = self.candidates[self.candidates.len() - 1];
                for &t in &self.candidates {
                    let TransitionKind::Immediate { weight, .. } =
                        self.net.kind(crate::net::TransitionId(t))
                    else {
                        unreachable!()
                    };
                    if u < weight {
                        pick = t;
                        break;
                    }
                    u -= weight;
                }
                pick
            }
        };
        let marking = &mut self.marking;
        self.net.fire_into(marking, chosen, &mut self.changed);
        if self.warmup_done {
            self.firings[chosen as usize] += 1;
        }
        self.propagate(chosen);
        true
    }

    /// Exhaust immediate transitions (vanishing resolution).
    fn settle(&mut self) -> Result<(), PetriError> {
        let mut steps = 0usize;
        while self.fire_one_immediate() {
            steps += 1;
            if steps > self.cfg.max_vanishing_chain {
                return Err(PetriError::VanishingLoop { time: self.now });
            }
        }
        // The tangible marking determines reward values until the next event.
        for (v, r) in self.reward_value.iter_mut().zip(self.rewards) {
            *v = r.eval(&self.marking);
        }
        Ok(())
    }

    /// Integrate statistics over `[self.now, t)` (marking constant there).
    fn accrue(&mut self, t: f64) {
        let dt = t - self.now;
        if dt <= 0.0 {
            return;
        }
        for (acc, &m) in self.place_integral.iter_mut().zip(self.marking.as_slice()) {
            *acc += m as f64 * dt;
        }
        for (acc, &v) in self.reward_integral.iter_mut().zip(&self.reward_value) {
            *acc += v * dt;
        }
    }

    fn reset_statistics(&mut self) {
        self.place_integral.iter_mut().for_each(|x| *x = 0.0);
        self.reward_integral.iter_mut().for_each(|x| *x = 0.0);
        self.firings.iter_mut().for_each(|x| *x = 0);
        self.stats_start = self.cfg.warmup;
        self.warmup_done = true;
    }

    /// Advance the clock to `t`, splitting the integration at the warm-up
    /// boundary if it lies inside `(now, t]`.
    fn advance_to(&mut self, t: f64) {
        if !self.warmup_done && t >= self.cfg.warmup {
            self.accrue(self.cfg.warmup);
            self.now = self.cfg.warmup;
            self.reset_statistics();
        }
        self.accrue(t);
        self.now = t;
    }

    fn run(mut self) -> Result<SimOutput, PetriError> {
        self.refresh_all();
        self.settle()?;

        let horizon = self.cfg.horizon;
        let mut zeno_streak = 0usize;
        loop {
            // Earliest timed firing.
            let mut next: Option<(f64, u32)> = None;
            for &t in self.net.timed_indices() {
                if let Some(at) = self.timers[t as usize] {
                    debug_assert!(self.enabled[t as usize]);
                    match next {
                        Some((best, _)) if at >= best => {}
                        _ => next = Some((at, t)),
                    }
                }
            }
            let Some((at, t)) = next else {
                break; // dead marking: idle to the horizon
            };
            if at > horizon {
                break;
            }
            if at <= self.now {
                zeno_streak += 1;
                if zeno_streak > self.cfg.zeno_guard {
                    return Err(PetriError::ZenoLoop {
                        time: self.now,
                        transition: self
                            .net
                            .transition_name(crate::net::TransitionId(t))
                            .to_owned(),
                    });
                }
            } else {
                zeno_streak = 0;
            }
            self.advance_to(at);
            let marking = &mut self.marking;
            self.net.fire_into(marking, t, &mut self.changed);
            if self.warmup_done {
                self.firings[t as usize] += 1;
            }
            self.propagate(t);
            self.settle()?;
        }
        self.advance_to(horizon);

        let observed = horizon - self.stats_start;
        let inv = if observed > 0.0 { 1.0 / observed } else { 0.0 };
        Ok(SimOutput {
            time_observed: observed,
            place_means: self.place_integral.iter().map(|x| x * inv).collect(),
            reward_means: self.reward_integral.iter().map(|x| x * inv).collect(),
            firings: self.firings,
            final_marking: self.marking,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, PlaceId, TransitionKind};
    use crate::sim::Reward;
    use wsnem_stats::dist::Dist;
    use wsnem_stats::rng::Xoshiro256PlusPlus;

    fn run(net: &PetriNet, horizon: f64, rewards: &[Reward], seed: u64) -> SimOutput {
        let cfg = SimConfig::for_horizon(horizon);
        let mut rng = Xoshiro256PlusPlus::new(seed);
        simulate(net, &cfg, rewards, &mut rng).unwrap()
    }

    /// The paper's Fig. 1: P0 --T0--> P1, one token.
    #[test]
    fn fig1_single_transition() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t0 = b.exponential("T0", 2.0);
        b.input_arc(p0, t0, 1);
        b.output_arc(t0, p1, 1);
        let net = b.build().unwrap();
        let out = run(&net, 100.0, &[], 1);
        assert_eq!(out.final_marking.as_slice(), &[0, 1]);
        assert_eq!(out.firings, vec![1]);
        // P1 holds its token for ~(100 - Exp(2)) of 100 s.
        assert!(out.place_means[1] > 0.9);
        assert!((out.place_means[0] + out.place_means[1] - 1.0).abs() < 1e-9);
    }

    /// Two-state cycle: token alternates P0 -> P1 -> P0; mean tokens in P0
    /// must equal b/(a+b) (the CTMC stationary probability).
    #[test]
    fn two_state_cycle_matches_ctmc() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.exponential("t01", 2.0);
        let t10 = b.exponential("t10", 3.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 50_000.0,
            warmup: 100.0,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(42);
        let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
        assert!(
            (out.place_means[0] - 0.6).abs() < 0.01,
            "{}",
            out.place_means[0]
        );
        assert!((out.place_means[1] - 0.4).abs() < 0.01);
        // Throughputs of the two transitions must match (flow balance) and
        // equal a·π0 = 1.2/s.
        assert!((out.throughput(0) - 1.2).abs() < 0.05);
        assert!((out.throughput(1) - 1.2).abs() < 0.05);
    }

    /// M/M/1 as a net: source (exp λ, no inputs) feeds Queue; server (exp μ)
    /// drains it. Mean queue ≈ ρ/(1−ρ), utilization ≈ ρ.
    #[test]
    fn mm1_net_matches_theory() {
        let mut b = NetBuilder::new();
        let q = b.place("Queue", 0);
        let arrive = b.exponential("arrive", 1.0);
        let serve = b.exponential("serve", 2.0);
        b.output_arc(arrive, q, 1);
        b.input_arc(q, serve, 1);
        let net = b.build().unwrap();
        let busy = Reward::indicator("busy", move |m| m.tokens(q) > 0);
        let cfg = SimConfig {
            horizon: 100_000.0,
            warmup: 1000.0,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(7);
        let out = simulate(&net, &cfg, &[busy], &mut rng).unwrap();
        assert!(
            (out.place_means[0] - 1.0).abs() < 0.08,
            "L = {}",
            out.place_means[0]
        );
        assert!(
            (out.reward_means[0] - 0.5).abs() < 0.02,
            "ρ̂ = {}",
            out.reward_means[0]
        );
    }

    /// Deterministic transitions fire after exactly their delay.
    #[test]
    fn deterministic_timing_exact() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t = b.deterministic("t", 2.5);
        b.input_arc(p0, t, 1);
        b.output_arc(t, p1, 1);
        let net = b.build().unwrap();
        // Horizon 2.4: must NOT have fired.
        let out = run(&net, 2.4, &[], 1);
        assert_eq!(out.final_marking.as_slice(), &[1, 0]);
        // Horizon 2.6: must have fired; P1 occupied for 0.1/2.6 of the run.
        let out = run(&net, 2.6, &[], 1);
        assert_eq!(out.final_marking.as_slice(), &[0, 1]);
        assert!((out.place_means[1] - 0.1 / 2.6).abs() < 1e-9);
    }

    /// RaceResample (enabling memory): disabling resets a deterministic
    /// clock. An inhibited deterministic transition never fires if it is
    /// re-disabled faster than its delay.
    #[test]
    fn race_resample_resets_clock() {
        // "timer" (det 1.0) moves token P->Done but is inhibited by Busy.
        // "poke" (det 0.6) refills Busy; "drain" (det 0.3) empties Busy.
        // Busy is occupied during [poke, poke+0.3) every 0.6 s, so "timer"
        // is disabled every 0.6 s — it can never accumulate 1.0 s enabled.
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let done = b.place("Done", 0);
        let busy = b.place("Busy", 0);
        let gen = b.place("Gen", 1);
        let timer = b.deterministic("timer", 1.0);
        b.input_arc(p, timer, 1);
        b.output_arc(timer, done, 1);
        b.inhibitor_arc(busy, timer, 1);
        let poke = b.deterministic("poke", 0.6);
        b.input_arc(gen, poke, 1);
        b.output_arc(poke, busy, 1);
        let drain = b.deterministic("drain", 0.3);
        b.input_arc(busy, drain, 1);
        b.output_arc(drain, gen, 1);
        let net = b.build().unwrap();
        let out = run(&net, 100.0, &[], 5);
        assert_eq!(
            out.final_marking.tokens(done),
            0,
            "enabling-memory timer must keep resetting"
        );
    }

    /// AgeMemory: the same structure, but the timer keeps its progress
    /// across disablings, so it eventually fires.
    #[test]
    fn age_memory_accumulates_progress() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let done = b.place("Done", 0);
        let busy = b.place("Busy", 0);
        let gen = b.place("Gen", 1);
        let timer = b.transition(
            "timer",
            TransitionKind::Timed {
                dist: Dist::Deterministic(1.0),
                policy: crate::net::TimedPolicy::AgeMemory,
            },
        );
        b.input_arc(p, timer, 1);
        b.output_arc(timer, done, 1);
        b.inhibitor_arc(busy, timer, 1);
        let poke = b.deterministic("poke", 0.6);
        b.input_arc(gen, poke, 1);
        b.output_arc(poke, busy, 1);
        let drain = b.deterministic("drain", 0.3);
        b.input_arc(busy, drain, 1);
        b.output_arc(drain, gen, 1);
        let net = b.build().unwrap();
        let out = run(&net, 100.0, &[], 5);
        assert_eq!(out.final_marking.tokens(done), 1, "age memory must fire");
    }

    /// Immediate priorities: the higher-priority immediate always wins.
    #[test]
    fn immediate_priority_wins() {
        let mut b = NetBuilder::new();
        let src = b.place("Src", 0);
        let hi = b.place("Hi", 0);
        let lo = b.place("Lo", 0);
        let feed = b.exponential("feed", 1.0);
        b.output_arc(feed, src, 1);
        let t_hi = b.immediate("t_hi", 5, 1.0);
        b.input_arc(src, t_hi, 1);
        b.output_arc(t_hi, hi, 1);
        let t_lo = b.immediate("t_lo", 1, 1000.0);
        b.input_arc(src, t_lo, 1);
        b.output_arc(t_lo, lo, 1);
        let net = b.build().unwrap();
        let out = run(&net, 500.0, &[], 11);
        assert!(out.firings[1] > 100, "t_hi fired {}", out.firings[1]);
        assert_eq!(out.firings[2], 0, "low priority starves despite weight");
        assert_eq!(out.final_marking.tokens(lo), 0);
    }

    /// Equal-priority immediates split by weight.
    #[test]
    fn immediate_weights_split_probabilistically() {
        let mut b = NetBuilder::new();
        let src = b.place("Src", 0);
        let a = b.place("A", 0);
        let c = b.place("C", 0);
        let feed = b.exponential("feed", 10.0);
        b.output_arc(feed, src, 1);
        let ta = b.immediate("ta", 1, 3.0);
        b.input_arc(src, ta, 1);
        b.output_arc(ta, a, 1);
        let tc = b.immediate("tc", 1, 1.0);
        b.input_arc(src, tc, 1);
        b.output_arc(tc, c, 1);
        let net = b.build().unwrap();
        let out = run(&net, 3000.0, &[], 13);
        let total = (out.firings[1] + out.firings[2]) as f64;
        let frac_a = out.firings[1] as f64 / total;
        assert!((frac_a - 0.75).abs() < 0.02, "weight split {frac_a}");
    }

    /// A vanishing loop (two immediates feeding each other) is detected.
    #[test]
    fn vanishing_loop_detected() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.immediate("t01", 1, 1.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        let t10 = b.immediate("t10", 1, 1.0);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 10.0,
            max_vanishing_chain: 1000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(3);
        assert!(matches!(
            simulate(&net, &cfg, &[], &mut rng),
            Err(PetriError::VanishingLoop { .. })
        ));
    }

    /// A zero-delay timed self-loop trips the Zeno guard.
    #[test]
    fn zeno_loop_detected() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let t = b.deterministic("t", 0.0);
        b.input_arc(p, t, 1);
        b.output_arc(t, p, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 10.0,
            zeno_guard: 1000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(3);
        assert!(matches!(
            simulate(&net, &cfg, &[], &mut rng),
            Err(PetriError::ZenoLoop { .. })
        ));
    }

    /// Dead nets idle to the horizon with constant statistics.
    #[test]
    fn dead_marking_idles() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 3);
        let _unused = b.place("Q", 0);
        let t = b.exponential("t", 1.0);
        // t needs Q which is empty → dead immediately.
        let q = PlaceId(1);
        b.input_arc(q, t, 1);
        let net = b.build().unwrap();
        let _ = p;
        let out = run(&net, 50.0, &[Reward::tokens("p", PlaceId(0))], 9);
        assert_eq!(out.place_means[0], 3.0);
        assert_eq!(out.reward_means[0], 3.0);
        assert_eq!(out.firings, vec![0]);
        assert_eq!(out.time_observed, 50.0);
    }

    /// Warm-up removes the initial transient from the averages.
    #[test]
    fn warmup_truncation() {
        // Token starts in P0, moves to P1 after exactly 10 s and stays.
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t = b.deterministic("t", 10.0);
        b.input_arc(p0, t, 1);
        b.output_arc(t, p1, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 100.0,
            warmup: 20.0,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(1);
        let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
        assert_eq!(out.place_means[1], 1.0, "transient excluded");
        assert_eq!(out.time_observed, 80.0);
        assert_eq!(out.firings, vec![0], "firing happened pre-warmup");
    }

    /// Determinism: same seed, same everything.
    #[test]
    fn deterministic_replication() {
        let mut b = NetBuilder::new();
        let q = b.place("Queue", 0);
        let arrive = b.exponential("arrive", 1.0);
        let serve = b.exponential("serve", 1.5);
        b.output_arc(arrive, q, 1);
        b.input_arc(q, serve, 1);
        let net = b.build().unwrap();
        let a = run(&net, 1000.0, &[], 123);
        let b2 = run(&net, 1000.0, &[], 123);
        assert_eq!(a, b2);
        let c = run(&net, 1000.0, &[], 124);
        assert_ne!(a.place_means, c.place_means);
    }
}
