//! The EDSPN token game.
//!
//! Execution alternates two phases:
//!
//! 1. **Vanishing resolution** — while any immediate transition is enabled,
//!    fire one (highest priority first; weight-proportional choice among
//!    ties) without advancing the clock. A chain longer than
//!    `max_vanishing_chain` aborts with [`PetriError::VanishingLoop`].
//! 2. **Tangible step** — every enabled timed transition holds a sampled
//!    firing time; the earliest fires and the clock advances. The race
//!    policy decides what happens to clocks on disabling
//!    ([`TimedPolicy::RaceResample`] discards, [`TimedPolicy::AgeMemory`]
//!    freezes the remaining time).
//!
//! Statistics (place token averages, marking rewards) integrate the
//! piecewise-constant tangible marking exactly between events; vanishing
//! markings have zero width and contribute nothing, matching standard
//! GSPN/EDSPN semantics.
//!
//! # Event-driven execution
//!
//! For nets above [`SCAN_THRESHOLD`] transitions the engine runs
//! event-driven rather than scan-driven; per event it pays O(log T + Δ)
//! instead of O(T + arcs):
//!
//! * **Incremental enabling counts** — the net precomputes a CSR of
//!   enabling conditions grouped by place ([`PetriNet::conds_of`]); the
//!   engine keeps one *unsatisfied-condition count* per transition and
//!   updates it from the `(place, old, new)` deltas of each firing, so
//!   enabling flips surface without re-reading the marking or re-walking
//!   arcs. The flip pass visits the exact transition sequence the
//!   full-recheck visits (fired first, then neighbours of changed places
//!   in order), so the RNG draw order — and therefore every trajectory —
//!   is preserved seed-for-seed.
//! * **Tombstone timer heap** — pending timed firings live in the shared
//!   [`wsnem_stats::pq::EventQueue`] (O(log T) schedule/pop, O(1) cancel),
//!   keyed by transition index so equal-time ties resolve exactly like a
//!   linear scan's "lowest index wins" rule.
//!
//! Small nets (the paper's CPU net has 8 transitions; M/M/1-style models
//! have 2) keep the direct path — `is_enabled` recheck plus a linear timer
//! scan — because measured constant factors dominate there: counting
//! deltas and heap slab bookkeeping cost more than walking two arcs.
//! Both strategies share tie-break rules and RNG draw order, so the
//! chosen mode changes wall-clock only, never the trajectory.
//!
//! A scan-driven reference implementation is retained under `#[cfg(test)]`
//! (`sim::reference`) and a randomized battery (covering nets on both
//! sides of the threshold) asserts bit-identical outputs against it.

use wsnem_obs::{NoopObserver, Observer};
use wsnem_stats::dist::Sample;
use wsnem_stats::pq::{EventId, EventQueue};
use wsnem_stats::rng::Rng64;

use crate::error::PetriError;
use crate::net::{PetriNet, TimedPolicy, TransitionKind};
use crate::sim::{Reward, SimConfig, SimOutput};

/// Above this many transitions the engine switches to event-driven
/// execution (incremental enabling counts + tombstone timer heap); at or
/// below it, the direct `is_enabled` recheck and a linear minimum scan of
/// the timer vector are faster (fewer branches, no slab bookkeeping, no
/// count maintenance). Both strategies share tie-break rules and RNG draw
/// order, so the trajectory is identical — only the wall-clock changes.
const SCAN_THRESHOLD: usize = 16;

/// Run one replication of the token game.
pub fn simulate<R: Rng64 + ?Sized>(
    net: &PetriNet,
    cfg: &SimConfig,
    rewards: &[Reward],
    rng: &mut R,
) -> Result<SimOutput, PetriError> {
    simulate_observed(net, cfg, rewards, rng, &mut NoopObserver)
}

/// Run one replication of the token game with an attached
/// [`Observer`](wsnem_obs::Observer).
///
/// The observer sees every firing (`firing`), every marking change
/// (`marking_update`), the timer-structure depth at each timed event
/// (`timer_depth`), each resolved vanishing chain (`vanishing_chain`), and
/// every RNG draw (`rng_draw`). Attaching an observer never perturbs the
/// trajectory: RNG draw order is identical with and without instrumentation,
/// and with [`NoopObserver`] (`ENABLED = false`) every hook compiles away,
/// leaving [`simulate`]'s exact machine code.
pub fn simulate_observed<R: Rng64 + ?Sized, O: Observer>(
    net: &PetriNet,
    cfg: &SimConfig,
    rewards: &[Reward],
    rng: &mut R,
    obs: &mut O,
) -> Result<SimOutput, PetriError> {
    cfg.validate()?;
    // Monomorphized per mode: zero runtime dispatch inside the hot loop.
    if net.n_transitions() > SCAN_THRESHOLD {
        Engine::<R, O, true>::new(net, cfg, rewards, rng, obs).run()
    } else {
        Engine::<R, O, false>::new(net, cfg, rewards, rng, obs).run()
    }
}

/// `ED` (event-driven) selects the mode at compile time: `true` runs
/// incremental counts + timer heap, `false` the small-net direct path.
struct Engine<'a, R: Rng64 + ?Sized, O: Observer, const ED: bool> {
    net: &'a PetriNet,
    cfg: &'a SimConfig,
    rewards: &'a [Reward],
    rng: &'a mut R,
    obs: &'a mut O,

    marking: crate::marking::Marking,
    now: f64,
    enabled: Vec<bool>,
    /// Sampled absolute firing time per transition while scheduled (timed
    /// only) — read back when AgeMemory freezes the remaining delay.
    timers: Vec<Option<f64>>,
    /// Frozen remaining delay for AgeMemory transitions while disabled.
    age_left: Vec<Option<f64>>,
    /// Unsatisfied enabling-condition count per transition; enabled iff 0
    /// (event-driven mode only).
    unsat: Vec<u32>,
    /// Heap handle of the pending firing per transition (event-driven mode
    /// only).
    timer_ids: Vec<Option<EventId>>,
    /// Pending timed firings, keyed by transition index for tie-breaks
    /// (event-driven mode only).
    queue: EventQueue<u32>,

    // Statistics.
    stats_start: f64,
    place_integral: Vec<f64>,
    reward_integral: Vec<f64>,
    reward_value: Vec<f64>,
    firings: Vec<u64>,
    warmup_done: bool,

    // Scratch buffers (no allocation in the hot loop).
    changed: Vec<u32>,
    candidates: Vec<u32>,
}

impl<'a, R: Rng64 + ?Sized, O: Observer, const ED: bool> Engine<'a, R, O, ED> {
    fn new(
        net: &'a PetriNet,
        cfg: &'a SimConfig,
        rewards: &'a [Reward],
        rng: &'a mut R,
        obs: &'a mut O,
    ) -> Self {
        let marking = net.initial_marking();
        let nt = net.n_transitions();
        let mut unsat = vec![0u32; nt];
        if ED {
            net.count_unsat(&marking, &mut unsat);
        }
        let n_timed = net.timed_indices().len();
        Self {
            net,
            cfg,
            rewards,
            rng,
            obs,
            marking,
            now: 0.0,
            enabled: vec![false; nt],
            unsat,
            timers: vec![None; nt],
            timer_ids: vec![None; nt],
            queue: EventQueue::with_capacity(if ED { n_timed } else { 0 }),
            age_left: vec![None; nt],
            stats_start: 0.0,
            place_integral: vec![0.0; net.n_places()],
            reward_integral: vec![0.0; rewards.len()],
            reward_value: vec![0.0; rewards.len()],
            firings: vec![0; nt],
            warmup_done: cfg.warmup == 0.0,
            changed: Vec::with_capacity(8),
            candidates: Vec::with_capacity(8),
        }
    }

    /// Fold one place's marking delta into the unsatisfied-condition counts.
    ///
    /// A condition of either kind flips exactly when `tokens >= bound`
    /// changes truth value; the inhibitor bit only decides the sign. Both
    /// are computed without branching on the arc kind.
    #[inline]
    fn apply_delta(&mut self, p: u32, old: u32, new: u32) {
        let net = self.net;
        for c in net.conds_of(p) {
            let ge_old = old >= c.bound();
            let ge_new = new >= c.bound();
            if ge_old != ge_new {
                // Became satisfied iff `tokens >= bound` now lands on the
                // satisfied side (inputs: true; inhibitors: false).
                if ge_new != c.inhibitor() {
                    self.unsat[c.trans as usize] -= 1;
                } else {
                    self.unsat[c.trans as usize] += 1;
                }
            }
        }
    }

    /// React to a (possible) enabling flip of transition `t`: sync the
    /// cached `enabled` bit with the unsatisfied count and maintain the
    /// timer according to the race policy. The RNG is touched only on a
    /// real flip of an enabled timed transition — exactly when the old
    /// full-recheck engine touched it, keeping trajectories seed-identical.
    fn flip_check(&mut self, t: u32) {
        let was = self.enabled[t as usize];
        let is = if ED {
            self.unsat[t as usize] == 0
        } else {
            self.net
                .is_enabled(&self.marking, crate::net::TransitionId(t))
        };
        if was == is {
            return;
        }
        self.enabled[t as usize] = is;
        match self.net.kind(crate::net::TransitionId(t)) {
            TransitionKind::Immediate { .. } => {}
            TransitionKind::Timed { dist, policy } => {
                if is {
                    let delay = match policy {
                        TimedPolicy::RaceResample => {
                            if O::ENABLED {
                                self.obs.rng_draw();
                            }
                            dist.sample(self.rng).max(0.0)
                        }
                        TimedPolicy::AgeMemory => match self.age_left[t as usize].take() {
                            Some(left) => left,
                            None => {
                                if O::ENABLED {
                                    self.obs.rng_draw();
                                }
                                dist.sample(self.rng).max(0.0)
                            }
                        },
                    };
                    let at = self.now + delay;
                    self.timers[t as usize] = Some(at);
                    if ED {
                        self.timer_ids[t as usize] =
                            Some(self.queue.schedule_keyed(at, t as u64, t));
                    }
                } else {
                    let fire_at = self.timers[t as usize].take();
                    if ED {
                        if let Some(id) = self.timer_ids[t as usize].take() {
                            self.queue.cancel(id);
                        }
                    }
                    if policy == TimedPolicy::AgeMemory {
                        if let Some(at) = fire_at {
                            self.age_left[t as usize] = Some((at - self.now).max(0.0));
                        }
                    }
                }
            }
        }
    }

    /// Fire `t`: move tokens and fold each place's delta into the enabling
    /// counts in one pass (no second traversal, no old-value snapshots).
    /// Records the changed places for the flip pass in `propagate`.
    fn fire_transition(&mut self, t: u32) {
        self.changed.clear();
        let net = self.net;
        if O::ENABLED {
            let immediate = matches!(
                net.kind(crate::net::TransitionId(t)),
                TransitionKind::Immediate { .. }
            );
            self.obs.firing(self.now, t, immediate);
        }
        if ED {
            for &(p, mult) in net.input_arcs(t) {
                let old = self.marking.0[p as usize];
                debug_assert!(old >= mult, "firing disabled transition");
                let new = old - mult;
                self.marking.0[p as usize] = new;
                self.apply_delta(p, old, new);
                self.changed.push(p);
            }
            for &(p, mult) in net.output_arcs(t) {
                let old = self.marking.0[p as usize];
                let new = old + mult;
                self.marking.0[p as usize] = new;
                self.apply_delta(p, old, new);
                if !self.changed.contains(&p) {
                    self.changed.push(p);
                }
            }
        } else {
            // Small-net path: flips are rechecked directly from the
            // marking, so no count maintenance.
            net.fire_into(&mut self.marking, t, &mut self.changed);
        }
        if O::ENABLED {
            for i in 0..self.changed.len() {
                let p = self.changed[i];
                let tokens = self.marking.0[p as usize];
                self.obs.marking_update(self.now, p, tokens);
            }
        }
        if self.warmup_done {
            self.firings[t as usize] += 1;
        }
    }

    /// After firing, run flip checks over the fired transition and
    /// everything adjacent to the changed places (the same visit order —
    /// and therefore RNG draw order — the scan engine used).
    fn propagate(&mut self, fired: u32) {
        // The fired transition consumed its own timer; force recompute
        // (without AgeMemory freezing — the clock was spent by firing).
        self.enabled[fired as usize] = false;
        self.timers[fired as usize] = None;
        if ED {
            if let Some(id) = self.timer_ids[fired as usize].take() {
                self.queue.cancel(id);
            }
        }
        self.flip_check(fired);
        // Enabling of neighbours of changed places may have flipped.
        let net = self.net;
        for i in 0..self.changed.len() {
            let p = self.changed[i];
            for &t in net.affected_by(p) {
                if t != fired {
                    self.flip_check(t);
                }
            }
        }
    }

    /// Fire one enabled immediate transition if any; returns whether one
    /// fired.
    fn fire_one_immediate(&mut self) -> bool {
        self.candidates.clear();
        let mut best_priority = 0u8;
        // `immediate_indices` is sorted highest priority first, so the
        // first enabled transition fixes the winning priority group and the
        // scan stops at the group's end instead of walking every immediate.
        // Priorities and weights come from the net's flat side tables — no
        // enum match per candidate.
        for &t in self.net.immediate_indices() {
            if !self.enabled[t as usize] {
                continue;
            }
            let priority = self.net.imm_priority(t);
            if self.candidates.is_empty() {
                self.candidates.push(t);
                best_priority = priority;
            } else if priority == best_priority {
                self.candidates.push(t);
            } else {
                break;
            }
        }
        let chosen = match self.candidates.len() {
            0 => return false,
            1 => self.candidates[0],
            _ => {
                // Weight-proportional random choice.
                let total: f64 = self
                    .candidates
                    .iter()
                    .map(|&t| self.net.imm_weight(t))
                    .sum();
                if O::ENABLED {
                    self.obs.rng_draw();
                }
                let mut u = self.rng.next_f64() * total;
                let mut pick = self.candidates[self.candidates.len() - 1];
                for &t in &self.candidates {
                    let weight = self.net.imm_weight(t);
                    if u < weight {
                        pick = t;
                        break;
                    }
                    u -= weight;
                }
                pick
            }
        };
        self.fire_transition(chosen);
        self.propagate(chosen);
        true
    }

    /// Exhaust immediate transitions (vanishing resolution).
    fn settle(&mut self) -> Result<(), PetriError> {
        let mut steps = 0usize;
        while self.fire_one_immediate() {
            steps += 1;
            if steps > self.cfg.max_vanishing_chain {
                return Err(PetriError::VanishingLoop { time: self.now });
            }
        }
        if O::ENABLED && steps > 0 {
            self.obs.vanishing_chain(self.now, steps);
        }
        // The tangible marking determines reward values until the next event.
        for (v, r) in self.reward_value.iter_mut().zip(self.rewards) {
            *v = r.eval(&self.marking);
        }
        Ok(())
    }

    /// Integrate statistics over `[self.now, t)` (marking constant there).
    fn accrue(&mut self, t: f64) {
        let dt = t - self.now;
        if dt <= 0.0 {
            return;
        }
        for (acc, &m) in self.place_integral.iter_mut().zip(self.marking.as_slice()) {
            *acc += m as f64 * dt;
        }
        for (acc, &v) in self.reward_integral.iter_mut().zip(&self.reward_value) {
            *acc += v * dt;
        }
    }

    fn reset_statistics(&mut self) {
        self.place_integral.iter_mut().for_each(|x| *x = 0.0);
        self.reward_integral.iter_mut().for_each(|x| *x = 0.0);
        self.firings.iter_mut().for_each(|x| *x = 0);
        self.stats_start = self.cfg.warmup;
        self.warmup_done = true;
    }

    /// Advance the clock to `t`, splitting the integration at the warm-up
    /// boundary if it lies inside `(now, t]`.
    fn advance_to(&mut self, t: f64) {
        if !self.warmup_done && t >= self.cfg.warmup {
            self.accrue(self.cfg.warmup);
            self.now = self.cfg.warmup;
            self.reset_statistics();
        }
        self.accrue(t);
        self.now = t;
    }

    fn run(mut self) -> Result<SimOutput, PetriError> {
        // Start-up flip pass in transition-index order (the order the old
        // full refresh sampled initial timers in).
        for t in 0..self.net.n_transitions() as u32 {
            self.flip_check(t);
        }
        self.settle()?;

        let horizon = self.cfg.horizon;
        let mut zeno_streak = 0usize;
        loop {
            // Earliest timed firing, ties to the lowest transition index:
            // O(log T) heap pop for many-timer nets, linear minimum scan
            // for small ones (same rule, so the same trajectory).
            let next = if ED {
                self.queue.pop()
            } else {
                let mut next: Option<(f64, u32)> = None;
                for &t in self.net.timed_indices() {
                    if let Some(at) = self.timers[t as usize] {
                        match next {
                            Some((best, _)) if at >= best => {}
                            _ => next = Some((at, t)),
                        }
                    }
                }
                next
            };
            let Some((at, t)) = next else {
                break; // dead marking: idle to the horizon
            };
            debug_assert!(self.enabled[t as usize]);
            debug_assert_eq!(self.timers[t as usize], Some(at));
            // This event is consumed (the heap already dropped its entry);
            // clear the per-transition handle so propagate's forced
            // recompute doesn't chase a stale id.
            self.timers[t as usize] = None;
            if ED {
                self.timer_ids[t as usize] = None;
            }
            if at > horizon {
                break;
            }
            if at <= self.now {
                zeno_streak += 1;
                if zeno_streak > self.cfg.zeno_guard {
                    return Err(PetriError::ZenoLoop {
                        time: self.now,
                        transition: self
                            .net
                            .transition_name(crate::net::TransitionId(t))
                            .to_owned(),
                    });
                }
            } else {
                zeno_streak = 0;
            }
            self.advance_to(at);
            if O::ENABLED {
                // Depth of the pending-timer structure after this event was
                // consumed: heap length event-driven, scheduled-timer count
                // on the direct path.
                let depth = if ED {
                    self.queue.len()
                } else {
                    self.timers.iter().filter(|x| x.is_some()).count()
                };
                self.obs.timer_depth(at, depth);
            }
            self.fire_transition(t);
            self.propagate(t);
            self.settle()?;
        }
        self.advance_to(horizon);

        let observed = horizon - self.stats_start;
        let inv = if observed > 0.0 { 1.0 / observed } else { 0.0 };
        Ok(SimOutput {
            time_observed: observed,
            place_means: self.place_integral.iter().map(|x| x * inv).collect(),
            reward_means: self.reward_integral.iter().map(|x| x * inv).collect(),
            firings: self.firings,
            final_marking: self.marking,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, PlaceId, TransitionKind};
    use crate::sim::Reward;
    use wsnem_stats::dist::Dist;
    use wsnem_stats::rng::Xoshiro256PlusPlus;

    fn run(net: &PetriNet, horizon: f64, rewards: &[Reward], seed: u64) -> SimOutput {
        let cfg = SimConfig::for_horizon(horizon);
        let mut rng = Xoshiro256PlusPlus::new(seed);
        simulate(net, &cfg, rewards, &mut rng).unwrap()
    }

    /// The paper's Fig. 1: P0 --T0--> P1, one token.
    #[test]
    fn fig1_single_transition() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t0 = b.exponential("T0", 2.0);
        b.input_arc(p0, t0, 1);
        b.output_arc(t0, p1, 1);
        let net = b.build().unwrap();
        let out = run(&net, 100.0, &[], 1);
        assert_eq!(out.final_marking.as_slice(), &[0, 1]);
        assert_eq!(out.firings, vec![1]);
        // P1 holds its token for ~(100 - Exp(2)) of 100 s.
        assert!(out.place_means[1] > 0.9);
        assert!((out.place_means[0] + out.place_means[1] - 1.0).abs() < 1e-9);
    }

    /// Two-state cycle: token alternates P0 -> P1 -> P0; mean tokens in P0
    /// must equal b/(a+b) (the CTMC stationary probability).
    #[test]
    fn two_state_cycle_matches_ctmc() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.exponential("t01", 2.0);
        let t10 = b.exponential("t10", 3.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 50_000.0,
            warmup: 100.0,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(42);
        let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
        assert!(
            (out.place_means[0] - 0.6).abs() < 0.01,
            "{}",
            out.place_means[0]
        );
        assert!((out.place_means[1] - 0.4).abs() < 0.01);
        // Throughputs of the two transitions must match (flow balance) and
        // equal a·π0 = 1.2/s.
        assert!((out.throughput(0) - 1.2).abs() < 0.05);
        assert!((out.throughput(1) - 1.2).abs() < 0.05);
    }

    /// M/M/1 as a net: source (exp λ, no inputs) feeds Queue; server (exp μ)
    /// drains it. Mean queue ≈ ρ/(1−ρ), utilization ≈ ρ.
    #[test]
    fn mm1_net_matches_theory() {
        let mut b = NetBuilder::new();
        let q = b.place("Queue", 0);
        let arrive = b.exponential("arrive", 1.0);
        let serve = b.exponential("serve", 2.0);
        b.output_arc(arrive, q, 1);
        b.input_arc(q, serve, 1);
        let net = b.build().unwrap();
        let busy = Reward::indicator("busy", move |m| m.tokens(q) > 0);
        let cfg = SimConfig {
            horizon: 100_000.0,
            warmup: 1000.0,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(7);
        let out = simulate(&net, &cfg, &[busy], &mut rng).unwrap();
        assert!(
            (out.place_means[0] - 1.0).abs() < 0.08,
            "L = {}",
            out.place_means[0]
        );
        assert!(
            (out.reward_means[0] - 0.5).abs() < 0.02,
            "ρ̂ = {}",
            out.reward_means[0]
        );
    }

    /// Deterministic transitions fire after exactly their delay.
    #[test]
    fn deterministic_timing_exact() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t = b.deterministic("t", 2.5);
        b.input_arc(p0, t, 1);
        b.output_arc(t, p1, 1);
        let net = b.build().unwrap();
        // Horizon 2.4: must NOT have fired.
        let out = run(&net, 2.4, &[], 1);
        assert_eq!(out.final_marking.as_slice(), &[1, 0]);
        // Horizon 2.6: must have fired; P1 occupied for 0.1/2.6 of the run.
        let out = run(&net, 2.6, &[], 1);
        assert_eq!(out.final_marking.as_slice(), &[0, 1]);
        assert!((out.place_means[1] - 0.1 / 2.6).abs() < 1e-9);
    }

    /// RaceResample (enabling memory): disabling resets a deterministic
    /// clock. An inhibited deterministic transition never fires if it is
    /// re-disabled faster than its delay.
    #[test]
    fn race_resample_resets_clock() {
        // "timer" (det 1.0) moves token P->Done but is inhibited by Busy.
        // "poke" (det 0.6) refills Busy; "drain" (det 0.3) empties Busy.
        // Busy is occupied during [poke, poke+0.3) every 0.6 s, so "timer"
        // is disabled every 0.6 s — it can never accumulate 1.0 s enabled.
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let done = b.place("Done", 0);
        let busy = b.place("Busy", 0);
        let gen = b.place("Gen", 1);
        let timer = b.deterministic("timer", 1.0);
        b.input_arc(p, timer, 1);
        b.output_arc(timer, done, 1);
        b.inhibitor_arc(busy, timer, 1);
        let poke = b.deterministic("poke", 0.6);
        b.input_arc(gen, poke, 1);
        b.output_arc(poke, busy, 1);
        let drain = b.deterministic("drain", 0.3);
        b.input_arc(busy, drain, 1);
        b.output_arc(drain, gen, 1);
        let net = b.build().unwrap();
        let out = run(&net, 100.0, &[], 5);
        assert_eq!(
            out.final_marking.tokens(done),
            0,
            "enabling-memory timer must keep resetting"
        );
    }

    /// AgeMemory: the same structure, but the timer keeps its progress
    /// across disablings, so it eventually fires.
    #[test]
    fn age_memory_accumulates_progress() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let done = b.place("Done", 0);
        let busy = b.place("Busy", 0);
        let gen = b.place("Gen", 1);
        let timer = b.transition(
            "timer",
            TransitionKind::Timed {
                dist: Dist::Deterministic(1.0),
                policy: crate::net::TimedPolicy::AgeMemory,
            },
        );
        b.input_arc(p, timer, 1);
        b.output_arc(timer, done, 1);
        b.inhibitor_arc(busy, timer, 1);
        let poke = b.deterministic("poke", 0.6);
        b.input_arc(gen, poke, 1);
        b.output_arc(poke, busy, 1);
        let drain = b.deterministic("drain", 0.3);
        b.input_arc(busy, drain, 1);
        b.output_arc(drain, gen, 1);
        let net = b.build().unwrap();
        let out = run(&net, 100.0, &[], 5);
        assert_eq!(out.final_marking.tokens(done), 1, "age memory must fire");
    }

    /// Immediate priorities: the higher-priority immediate always wins.
    #[test]
    fn immediate_priority_wins() {
        let mut b = NetBuilder::new();
        let src = b.place("Src", 0);
        let hi = b.place("Hi", 0);
        let lo = b.place("Lo", 0);
        let feed = b.exponential("feed", 1.0);
        b.output_arc(feed, src, 1);
        let t_hi = b.immediate("t_hi", 5, 1.0);
        b.input_arc(src, t_hi, 1);
        b.output_arc(t_hi, hi, 1);
        let t_lo = b.immediate("t_lo", 1, 1000.0);
        b.input_arc(src, t_lo, 1);
        b.output_arc(t_lo, lo, 1);
        let net = b.build().unwrap();
        let out = run(&net, 500.0, &[], 11);
        assert!(out.firings[1] > 100, "t_hi fired {}", out.firings[1]);
        assert_eq!(out.firings[2], 0, "low priority starves despite weight");
        assert_eq!(out.final_marking.tokens(lo), 0);
    }

    /// Equal-priority immediates split by weight.
    #[test]
    fn immediate_weights_split_probabilistically() {
        let mut b = NetBuilder::new();
        let src = b.place("Src", 0);
        let a = b.place("A", 0);
        let c = b.place("C", 0);
        let feed = b.exponential("feed", 10.0);
        b.output_arc(feed, src, 1);
        let ta = b.immediate("ta", 1, 3.0);
        b.input_arc(src, ta, 1);
        b.output_arc(ta, a, 1);
        let tc = b.immediate("tc", 1, 1.0);
        b.input_arc(src, tc, 1);
        b.output_arc(tc, c, 1);
        let net = b.build().unwrap();
        let out = run(&net, 3000.0, &[], 13);
        let total = (out.firings[1] + out.firings[2]) as f64;
        let frac_a = out.firings[1] as f64 / total;
        assert!((frac_a - 0.75).abs() < 0.02, "weight split {frac_a}");
    }

    /// A vanishing loop (two immediates feeding each other) is detected.
    #[test]
    fn vanishing_loop_detected() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.immediate("t01", 1, 1.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        let t10 = b.immediate("t10", 1, 1.0);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 10.0,
            max_vanishing_chain: 1000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(3);
        assert!(matches!(
            simulate(&net, &cfg, &[], &mut rng),
            Err(PetriError::VanishingLoop { .. })
        ));
    }

    /// A zero-delay timed self-loop trips the Zeno guard.
    #[test]
    fn zeno_loop_detected() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let t = b.deterministic("t", 0.0);
        b.input_arc(p, t, 1);
        b.output_arc(t, p, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 10.0,
            zeno_guard: 1000,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(3);
        assert!(matches!(
            simulate(&net, &cfg, &[], &mut rng),
            Err(PetriError::ZenoLoop { .. })
        ));
    }

    /// Dead nets idle to the horizon with constant statistics.
    #[test]
    fn dead_marking_idles() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 3);
        let _unused = b.place("Q", 0);
        let t = b.exponential("t", 1.0);
        // t needs Q which is empty → dead immediately.
        let q = PlaceId(1);
        b.input_arc(q, t, 1);
        let net = b.build().unwrap();
        let _ = p;
        let out = run(&net, 50.0, &[Reward::tokens("p", PlaceId(0))], 9);
        assert_eq!(out.place_means[0], 3.0);
        assert_eq!(out.reward_means[0], 3.0);
        assert_eq!(out.firings, vec![0]);
        assert_eq!(out.time_observed, 50.0);
    }

    /// Warm-up removes the initial transient from the averages.
    #[test]
    fn warmup_truncation() {
        // Token starts in P0, moves to P1 after exactly 10 s and stays.
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t = b.deterministic("t", 10.0);
        b.input_arc(p0, t, 1);
        b.output_arc(t, p1, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig {
            horizon: 100.0,
            warmup: 20.0,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(1);
        let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
        assert_eq!(out.place_means[1], 1.0, "transient excluded");
        assert_eq!(out.time_observed, 80.0);
        assert_eq!(out.firings, vec![0], "firing happened pre-warmup");
    }

    /// Determinism: same seed, same everything.
    #[test]
    fn deterministic_replication() {
        let mut b = NetBuilder::new();
        let q = b.place("Queue", 0);
        let arrive = b.exponential("arrive", 1.0);
        let serve = b.exponential("serve", 1.5);
        b.output_arc(arrive, q, 1);
        b.input_arc(q, serve, 1);
        let net = b.build().unwrap();
        let a = run(&net, 1000.0, &[], 123);
        let b2 = run(&net, 1000.0, &[], 123);
        assert_eq!(a, b2);
        let c = run(&net, 1000.0, &[], 124);
        assert_ne!(a.place_means, c.place_means);
    }
}
