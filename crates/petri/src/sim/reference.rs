//! The scan-driven reference token game (test-only).
//!
//! This is the pre-event-driven engine, retained verbatim as the semantic
//! oracle for the heap+counter engine in [`super::engine`]: every event it
//! re-scans `timed_indices()` for the earliest timer and re-walks arcs via
//! `net.is_enabled()`. Slow, but obviously correct — the randomized battery
//! below asserts the production engine reproduces its `firings` and
//! `place_means` **bit-for-bit** on nets mixing immediates, both timer
//! policies, inhibitor arcs and zero-delay timed transitions.

use wsnem_stats::dist::Sample;
use wsnem_stats::rng::Rng64;

use crate::error::PetriError;
use crate::net::{PetriNet, TimedPolicy, TransitionKind};
use crate::sim::{Reward, SimConfig, SimOutput};

/// Run one replication with the scan-driven reference engine.
pub(crate) fn simulate_reference<R: Rng64 + ?Sized>(
    net: &PetriNet,
    cfg: &SimConfig,
    rewards: &[Reward],
    rng: &mut R,
) -> Result<SimOutput, PetriError> {
    cfg.validate()?;
    RefEngine::new(net, cfg, rewards, rng).run()
}

struct RefEngine<'a, R: Rng64 + ?Sized> {
    net: &'a PetriNet,
    cfg: &'a SimConfig,
    rewards: &'a [Reward],
    rng: &'a mut R,

    marking: crate::marking::Marking,
    now: f64,
    enabled: Vec<bool>,
    /// Sampled absolute firing time per transition (timed only).
    timers: Vec<Option<f64>>,
    /// Frozen remaining delay for AgeMemory transitions while disabled.
    age_left: Vec<Option<f64>>,

    // Statistics.
    stats_start: f64,
    place_integral: Vec<f64>,
    reward_integral: Vec<f64>,
    reward_value: Vec<f64>,
    firings: Vec<u64>,
    warmup_done: bool,

    // Scratch buffers.
    changed: Vec<u32>,
    candidates: Vec<u32>,
}

impl<'a, R: Rng64 + ?Sized> RefEngine<'a, R> {
    fn new(net: &'a PetriNet, cfg: &'a SimConfig, rewards: &'a [Reward], rng: &'a mut R) -> Self {
        let marking = net.initial_marking();
        let nt = net.n_transitions();
        Self {
            net,
            cfg,
            rewards,
            rng,
            marking,
            now: 0.0,
            enabled: vec![false; nt],
            timers: vec![None; nt],
            age_left: vec![None; nt],
            stats_start: 0.0,
            place_integral: vec![0.0; net.n_places()],
            reward_integral: vec![0.0; rewards.len()],
            reward_value: vec![0.0; rewards.len()],
            firings: vec![0; nt],
            warmup_done: cfg.warmup == 0.0,
            changed: Vec::with_capacity(8),
            candidates: Vec::with_capacity(8),
        }
    }

    /// Recompute enabling of transition `t` by re-walking its arcs.
    fn refresh_transition(&mut self, t: u32) {
        let ti = crate::net::TransitionId(t);
        let was = self.enabled[t as usize];
        let is = self.net.is_enabled(&self.marking, ti);
        if was == is {
            return;
        }
        self.enabled[t as usize] = is;
        match self.net.kind(ti) {
            TransitionKind::Immediate { .. } => {}
            TransitionKind::Timed { dist, policy } => {
                if is {
                    let delay = match policy {
                        TimedPolicy::RaceResample => dist.sample(self.rng).max(0.0),
                        TimedPolicy::AgeMemory => self.age_left[t as usize]
                            .take()
                            .unwrap_or_else(|| dist.sample(self.rng).max(0.0)),
                    };
                    self.timers[t as usize] = Some(self.now + delay);
                } else {
                    let fire_at = self.timers[t as usize].take();
                    if policy == TimedPolicy::AgeMemory {
                        if let Some(at) = fire_at {
                            self.age_left[t as usize] = Some((at - self.now).max(0.0));
                        }
                    }
                }
            }
        }
    }

    fn refresh_all(&mut self) {
        for t in 0..self.net.n_transitions() as u32 {
            self.refresh_transition(t);
        }
    }

    fn propagate(&mut self, fired: u32) {
        self.enabled[fired as usize] = false;
        self.timers[fired as usize] = None;
        self.refresh_transition(fired);
        let mut i = 0;
        while i < self.changed.len() {
            let p = self.changed[i];
            for &t in self.net.affected_by(p) {
                if t != fired {
                    self.refresh_transition(t);
                }
            }
            i += 1;
        }
    }

    fn fire_one_immediate(&mut self) -> bool {
        self.candidates.clear();
        let mut best_priority = 0u8;
        for &t in self.net.immediate_indices() {
            if !self.enabled[t as usize] {
                continue;
            }
            let TransitionKind::Immediate { priority, .. } =
                self.net.kind(crate::net::TransitionId(t))
            else {
                unreachable!("immediate_indices only lists immediates");
            };
            if self.candidates.is_empty() {
                self.candidates.push(t);
                best_priority = priority;
            } else if priority == best_priority {
                self.candidates.push(t);
            } else {
                break;
            }
        }
        let chosen = match self.candidates.len() {
            0 => return false,
            1 => self.candidates[0],
            _ => {
                let total: f64 = self
                    .candidates
                    .iter()
                    .map(|&t| match self.net.kind(crate::net::TransitionId(t)) {
                        TransitionKind::Immediate { weight, .. } => weight,
                        _ => unreachable!(),
                    })
                    .sum();
                let mut u = self.rng.next_f64() * total;
                let mut pick = self.candidates[self.candidates.len() - 1];
                for &t in &self.candidates {
                    let TransitionKind::Immediate { weight, .. } =
                        self.net.kind(crate::net::TransitionId(t))
                    else {
                        unreachable!()
                    };
                    if u < weight {
                        pick = t;
                        break;
                    }
                    u -= weight;
                }
                pick
            }
        };
        let marking = &mut self.marking;
        self.net.fire_into(marking, chosen, &mut self.changed);
        if self.warmup_done {
            self.firings[chosen as usize] += 1;
        }
        self.propagate(chosen);
        true
    }

    fn settle(&mut self) -> Result<(), PetriError> {
        let mut steps = 0usize;
        while self.fire_one_immediate() {
            steps += 1;
            if steps > self.cfg.max_vanishing_chain {
                return Err(PetriError::VanishingLoop { time: self.now });
            }
        }
        for (v, r) in self.reward_value.iter_mut().zip(self.rewards) {
            *v = r.eval(&self.marking);
        }
        Ok(())
    }

    fn accrue(&mut self, t: f64) {
        let dt = t - self.now;
        if dt <= 0.0 {
            return;
        }
        for (acc, &m) in self.place_integral.iter_mut().zip(self.marking.as_slice()) {
            *acc += m as f64 * dt;
        }
        for (acc, &v) in self.reward_integral.iter_mut().zip(&self.reward_value) {
            *acc += v * dt;
        }
    }

    fn reset_statistics(&mut self) {
        self.place_integral.iter_mut().for_each(|x| *x = 0.0);
        self.reward_integral.iter_mut().for_each(|x| *x = 0.0);
        self.firings.iter_mut().for_each(|x| *x = 0);
        self.stats_start = self.cfg.warmup;
        self.warmup_done = true;
    }

    fn advance_to(&mut self, t: f64) {
        if !self.warmup_done && t >= self.cfg.warmup {
            self.accrue(self.cfg.warmup);
            self.now = self.cfg.warmup;
            self.reset_statistics();
        }
        self.accrue(t);
        self.now = t;
    }

    fn run(mut self) -> Result<SimOutput, PetriError> {
        self.refresh_all();
        self.settle()?;

        let horizon = self.cfg.horizon;
        let mut zeno_streak = 0usize;
        loop {
            // Earliest timed firing: the O(T) linear scan, ties to the
            // lowest transition index.
            let mut next: Option<(f64, u32)> = None;
            for &t in self.net.timed_indices() {
                if let Some(at) = self.timers[t as usize] {
                    debug_assert!(self.enabled[t as usize]);
                    match next {
                        Some((best, _)) if at >= best => {}
                        _ => next = Some((at, t)),
                    }
                }
            }
            let Some((at, t)) = next else {
                break; // dead marking: idle to the horizon
            };
            if at > horizon {
                break;
            }
            if at <= self.now {
                zeno_streak += 1;
                if zeno_streak > self.cfg.zeno_guard {
                    return Err(PetriError::ZenoLoop {
                        time: self.now,
                        transition: self
                            .net
                            .transition_name(crate::net::TransitionId(t))
                            .to_owned(),
                    });
                }
            } else {
                zeno_streak = 0;
            }
            self.advance_to(at);
            let marking = &mut self.marking;
            self.net.fire_into(marking, t, &mut self.changed);
            if self.warmup_done {
                self.firings[t as usize] += 1;
            }
            self.propagate(t);
            self.settle()?;
        }
        self.advance_to(horizon);

        let observed = horizon - self.stats_start;
        let inv = if observed > 0.0 { 1.0 / observed } else { 0.0 };
        Ok(SimOutput {
            time_observed: observed,
            place_means: self.place_integral.iter().map(|x| x * inv).collect(),
            reward_means: self.reward_integral.iter().map(|x| x * inv).collect(),
            firings: self.firings,
            final_marking: self.marking,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NetBuilder, PlaceId, TimedPolicy, TransitionKind};
    use crate::sim::engine::simulate;
    use wsnem_stats::dist::Dist;
    use wsnem_stats::rng::{Rng64, Xoshiro256PlusPlus};

    /// Build a seeded random net mixing immediate transitions (random
    /// priorities/weights), exponential and deterministic timed transitions
    /// under both race policies, zero-delay timed transitions, multi-input
    /// arcs and inhibitors. `wide` nets carry dozens of transitions so they
    /// cross the engine's heap threshold — the battery must exercise both
    /// the linear-scan and the timer-heap selection paths.
    fn random_net(rng: &mut Xoshiro256PlusPlus, wide: bool) -> PetriNet {
        let (n_places, n_trans) = if wide {
            (
                8 + (rng.next_u64() % 8) as usize,   // 8..=15
                24 + (rng.next_u64() % 16) as usize, // 24..=39
            )
        } else {
            (
                3 + (rng.next_u64() % 6) as usize, // 3..=8
                3 + (rng.next_u64() % 8) as usize, // 3..=10
            )
        };
        let mut b = NetBuilder::new();
        let places: Vec<PlaceId> = (0..n_places)
            .map(|i| b.place(format!("P{i}"), (rng.next_u64() % 3) as u32))
            .collect();
        let policy = |rng: &mut Xoshiro256PlusPlus| {
            if rng.next_u64().is_multiple_of(2) {
                TimedPolicy::RaceResample
            } else {
                TimedPolicy::AgeMemory
            }
        };
        for i in 0..n_trans {
            let kind = match rng.next_u64() % 8 {
                0 | 1 => TransitionKind::Immediate {
                    priority: (rng.next_u64() % 3) as u8,
                    weight: 0.5 + rng.next_f64(),
                },
                // Zero-delay timed: stresses the Zeno path and equal-time
                // tie-breaking in the timer heap.
                2 => TransitionKind::Timed {
                    dist: Dist::Deterministic(0.0),
                    policy: policy(rng),
                },
                3..=5 => TransitionKind::Timed {
                    dist: Dist::Exponential {
                        rate: 0.5 + 2.0 * rng.next_f64(),
                    },
                    policy: policy(rng),
                },
                _ => TransitionKind::Timed {
                    dist: Dist::Deterministic(0.05 + rng.next_f64()),
                    policy: policy(rng),
                },
            };
            let t = b.transition(format!("T{i}"), kind);
            // Distinct places per arc kind: walk a random rotation.
            let start = (rng.next_u64() % n_places as u64) as usize;
            let n_in = 1 + (rng.next_u64() % 2) as usize;
            let n_out = 1 + (rng.next_u64() % 2) as usize;
            for k in 0..n_in {
                b.input_arc(
                    places[(start + k) % n_places],
                    t,
                    1 + (rng.next_u64() % 2) as u32,
                );
            }
            let out_start = (rng.next_u64() % n_places as u64) as usize;
            for k in 0..n_out {
                b.output_arc(
                    t,
                    places[(out_start + k) % n_places],
                    1 + (rng.next_u64() % 2) as u32,
                );
            }
            if rng.next_u64().is_multiple_of(3) {
                let p = (rng.next_u64() % n_places as u64) as usize;
                b.inhibitor_arc(places[p], t, 1 + (rng.next_u64() % 4) as u32);
            }
        }
        b.build().expect("random net is structurally valid")
    }

    /// The battery: for many seeded random nets, the heap+counter engine
    /// must reproduce the reference scan engine's output — `firings` and
    /// `place_means` bit-for-bit — or fail with the identical error.
    #[test]
    fn randomized_engine_equivalence_battery() {
        let mut gen = Xoshiro256PlusPlus::new(0xED5_B411E);
        let mut ok_runs = 0usize;
        let mut err_runs = 0usize;
        for case in 0..80u64 {
            // Every fourth net is wide (24+ transitions, mostly timed) so
            // the heap-selection path is battered too, not just the scan.
            let net = random_net(&mut gen, case % 4 == 0);
            let cfg = SimConfig {
                horizon: 40.0,
                warmup: if case % 3 == 0 { 5.0 } else { 0.0 },
                // Tight guards so Zeno/vanishing-prone nets terminate fast
                // (and must do so identically in both engines).
                max_vanishing_chain: 5_000,
                zeno_guard: 5_000,
            };
            let seed = 1000 + case;
            let mut rng_new = Xoshiro256PlusPlus::new(seed);
            let mut rng_ref = Xoshiro256PlusPlus::new(seed);
            let out_new = simulate(&net, &cfg, &[], &mut rng_new);
            let out_ref = simulate_reference(&net, &cfg, &[], &mut rng_ref);
            assert_eq!(out_new, out_ref, "case {case} diverged");
            // Both engines must also have consumed the same RNG stream.
            assert_eq!(
                rng_new.next_u64(),
                rng_ref.next_u64(),
                "case {case}: RNG streams desynchronized"
            );
            match out_new {
                Ok(_) => ok_runs += 1,
                Err(_) => err_runs += 1,
            }
        }
        // The generator must actually produce runnable nets (not only
        // degenerate error cases) for the battery to mean anything.
        assert!(ok_runs >= 40, "only {ok_runs} clean runs of 80");
        // A few Zeno/vanishing cases are expected and fine.
        let _ = err_runs;
    }

    /// Attaching any concrete observer must leave the trajectory — output
    /// AND RNG stream position — bit-identical to the unobserved run, over
    /// the same randomized 80-net population as the engine battery.
    #[test]
    fn observer_equivalence_battery() {
        use crate::sim::engine::simulate_observed;
        use wsnem_obs::{Counters, NoopObserver, StateTimeline, Tee, TraceWriter};

        let mut gen = Xoshiro256PlusPlus::new(0xED5_B411E);
        let mut traced_records = 0usize;
        for case in 0..80u64 {
            let net = random_net(&mut gen, case % 4 == 0);
            let cfg = SimConfig {
                horizon: 40.0,
                warmup: if case % 3 == 0 { 5.0 } else { 0.0 },
                max_vanishing_chain: 5_000,
                zeno_guard: 5_000,
            };
            let seed = 1000 + case;
            let mut rng_base = Xoshiro256PlusPlus::new(seed);
            let out_base = simulate(&net, &cfg, &[], &mut rng_base);

            // NDJSON trace into a memory sink (sampled on odd cases to also
            // cover the admission logic).
            let mut trace =
                TraceWriter::new(Vec::new()).with_sampling(if case % 2 == 1 { 3 } else { 1 });
            let mut rng = Xoshiro256PlusPlus::new(seed);
            let out = simulate_observed(&net, &cfg, &[], &mut rng, &mut trace);
            assert_eq!(out, out_base, "case {case}: TraceWriter perturbed run");
            assert_eq!(rng, rng_base, "case {case}: TraceWriter moved the RNG");
            traced_records += trace.records_written();

            let mut timeline = StateTimeline::new();
            let mut rng = Xoshiro256PlusPlus::new(seed);
            let out = simulate_observed(&net, &cfg, &[], &mut rng, &mut timeline);
            assert_eq!(out, out_base, "case {case}: StateTimeline perturbed run");
            assert_eq!(rng, rng_base, "case {case}: StateTimeline moved the RNG");

            let mut counters = Counters::new();
            let mut rng = Xoshiro256PlusPlus::new(seed);
            let out = simulate_observed(&net, &cfg, &[], &mut rng, &mut counters);
            assert_eq!(out, out_base, "case {case}: Counters perturbed run");
            assert_eq!(rng, rng_base, "case {case}: Counters moved the RNG");
            if let Ok(ref o) = out_base {
                let total: u64 = o.firings.iter().sum();
                let snap = counters.snapshot();
                assert!(
                    snap.firings >= total,
                    "case {case}: observer saw {} firings, report counted {total} \
                     (pre-warmup firings are observed but not reported)",
                    snap.firings
                );
            }

            let mut tee = Tee::new(Counters::new(), NoopObserver);
            let mut rng = Xoshiro256PlusPlus::new(seed);
            let out = simulate_observed(&net, &cfg, &[], &mut rng, &mut tee);
            assert_eq!(out, out_base, "case {case}: Tee perturbed run");
            assert_eq!(rng, rng_base, "case {case}: Tee moved the RNG");
        }
        assert!(traced_records > 1000, "traces were empty: {traced_records}");
    }

    /// Same battery idea on the paper's own CPU net shape: rewards included,
    /// several seeds, longer horizon with warm-up.
    #[test]
    fn paper_shaped_net_equivalence_with_rewards() {
        // A miniature power-state net: Busy/Idle with an inhibitor-gated
        // deterministic power-down timer and an immediate dispatch.
        let mut b = NetBuilder::new();
        let queue = b.place("Queue", 0);
        let idle = b.place("Idle", 1);
        let busy = b.place("Busy", 0);
        let sleep = b.place("Sleep", 0);
        let arrive = b.exponential("arrive", 1.2);
        b.output_arc(arrive, queue, 1);
        b.inhibitor_arc(queue, arrive, 8);
        let dispatch = b.immediate("dispatch", 1, 1.0);
        b.input_arc(queue, dispatch, 1);
        b.input_arc(idle, dispatch, 1);
        b.output_arc(dispatch, busy, 1);
        let serve = b.exponential("serve", 4.0);
        b.input_arc(busy, serve, 1);
        b.output_arc(serve, idle, 1);
        let down = b.deterministic("down", 0.5);
        b.input_arc(idle, down, 1);
        b.output_arc(down, sleep, 1);
        b.inhibitor_arc(queue, down, 1);
        let wake = b.deterministic("wake", 0.1);
        b.input_arc(sleep, wake, 1);
        b.output_arc(wake, idle, 1);
        let net = b.build().unwrap();
        let rewards = [
            Reward::tokens("queue", queue),
            Reward::indicator("sleeping", move |m| m.tokens(sleep) > 0),
        ];
        let cfg = SimConfig {
            horizon: 500.0,
            warmup: 50.0,
            ..SimConfig::default()
        };
        for seed in [1u64, 7, 42, 1234, 0xDEAD] {
            let mut rng_new = Xoshiro256PlusPlus::new(seed);
            let mut rng_ref = Xoshiro256PlusPlus::new(seed);
            let a = simulate(&net, &cfg, &rewards, &mut rng_new).unwrap();
            let r = simulate_reference(&net, &cfg, &rewards, &mut rng_ref).unwrap();
            assert_eq!(a, r, "seed {seed}");
        }
    }

    /// The many-timed bench shape: a closed ring of relays, every place
    /// marked, so all transitions race concurrently — heap selection
    /// guaranteed, equal-rate ties abundant.
    #[test]
    fn relay_ring_equivalence() {
        let n = 64usize;
        let mut b = NetBuilder::new();
        let places: Vec<PlaceId> = (0..n).map(|i| b.place(format!("Q{i}"), 1)).collect();
        for i in 0..n {
            let t = b.exponential(format!("hop{i}"), 1.0);
            b.input_arc(places[i], t, 1);
            b.output_arc(t, places[(i + 1) % n], 1);
        }
        let net = b.build().unwrap();
        let cfg = SimConfig::for_horizon(25.0);
        for seed in [3u64, 17, 2024] {
            let mut rng_new = Xoshiro256PlusPlus::new(seed);
            let mut rng_ref = Xoshiro256PlusPlus::new(seed);
            let a = simulate(&net, &cfg, &[], &mut rng_new).unwrap();
            let r = simulate_reference(&net, &cfg, &[], &mut rng_ref).unwrap();
            assert_eq!(a, r, "seed {seed}");
            // Token conservation across the ring.
            assert_eq!(a.final_marking.as_slice().iter().sum::<u32>(), n as u32);
        }
    }

    /// Pinned AgeMemory freeze/thaw regression: a deterministic 1.0 s timer
    /// runs [0, 0.6), freezes with 0.4 s left while Busy is occupied
    /// [0.6, 0.9), thaws at 0.9 and completes the remaining 0.4 s at
    /// t = 1.3 exactly.
    #[test]
    fn age_memory_freeze_thaw_pinned() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let done = b.place("Done", 0);
        let busy = b.place("Busy", 0);
        let gen = b.place("Gen", 1);
        let timer = b.transition(
            "timer",
            TransitionKind::Timed {
                dist: Dist::Deterministic(1.0),
                policy: TimedPolicy::AgeMemory,
            },
        );
        b.input_arc(p, timer, 1);
        b.output_arc(timer, done, 1);
        b.inhibitor_arc(busy, timer, 1);
        let poke = b.deterministic("poke", 0.6);
        b.input_arc(gen, poke, 1);
        b.output_arc(poke, busy, 1);
        let drain = b.deterministic("drain", 0.3);
        b.input_arc(busy, drain, 1);
        b.output_arc(drain, gen, 1);
        let net = b.build().unwrap();
        let cfg = SimConfig::for_horizon(10.0);
        for seed in [5u64, 99] {
            let mut rng = Xoshiro256PlusPlus::new(seed);
            let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
            assert_eq!(out.final_marking.tokens(done), 1);
            // Done holds its token over [1.3, 10]: mean = 8.7 / 10.
            assert!(
                (out.place_means[done.index()] - 0.87).abs() < 1e-9,
                "thawed timer must fire at exactly t = 1.3, got mean {}",
                out.place_means[done.index()]
            );
            // And the reference engine agrees bit-for-bit.
            let mut rng_ref = Xoshiro256PlusPlus::new(seed);
            let r = simulate_reference(&net, &cfg, &[], &mut rng_ref).unwrap();
            assert_eq!(out, r);
        }
    }
}
