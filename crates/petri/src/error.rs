//! EDSPN engine error type.

use std::fmt;

use wsnem_markov::MarkovError;
use wsnem_stats::StatsError;

/// Errors raised by net construction, simulation and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum PetriError {
    /// A distribution parameter was invalid.
    Stats(StatsError),
    /// An error bubbled up from the CTMC layer.
    Markov(MarkovError),
    /// Two places or two transitions share a name.
    DuplicateName(String),
    /// The same arc (kind, place, transition) was added twice.
    DuplicateArc {
        /// Transition name.
        transition: String,
        /// Place name.
        place: String,
    },
    /// An immediate transition has a non-positive or non-finite weight.
    InvalidWeight {
        /// Transition name.
        transition: String,
        /// Offending weight.
        weight: f64,
    },
    /// An arc multiplicity / inhibitor threshold of zero (meaningless) or
    /// `>= 2^31` (reserved by the packed enabling-condition layout).
    InvalidMultiplicity {
        /// Transition name.
        transition: String,
        /// Place name.
        place: String,
    },
    /// A name lookup failed (spec deserialization).
    UnknownName(String),
    /// A simulation config value was out of domain.
    InvalidConfig {
        /// Parameter name.
        what: &'static str,
        /// Constraint description.
        constraint: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Immediate transitions kept firing without reaching a tangible
    /// marking (an immediate cycle pumping tokens).
    VanishingLoop {
        /// Simulation time at which the loop was detected.
        time: f64,
    },
    /// Timed transitions kept firing without the clock advancing
    /// (zero-delay cycle).
    ZenoLoop {
        /// Simulation time at which the loop was detected.
        time: f64,
        /// The transition fired when the guard tripped.
        transition: String,
    },
    /// Reachability exploration exceeded the per-place token bound.
    Unbounded {
        /// Offending place name.
        place: String,
        /// The configured bound.
        bound: u32,
    },
    /// Reachability exploration exceeded the marking budget.
    TooManyMarkings {
        /// The configured budget.
        limit: usize,
    },
    /// CTMC export requires every timed transition to be exponential.
    NonExponentialTimed {
        /// Offending transition name.
        transition: String,
    },
    /// Vanishing-marking resolution hit a cycle of immediate firings.
    VanishingCycle {
        /// Debug rendering of the cycling marking.
        marking: String,
    },
    /// Invariant computation exceeded its row budget.
    InvariantExplosion {
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::Stats(e) => write!(f, "distribution error: {e}"),
            PetriError::Markov(e) => write!(f, "markov error: {e}"),
            PetriError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            PetriError::DuplicateArc { transition, place } => {
                write!(f, "duplicate arc between {place} and {transition}")
            }
            PetriError::InvalidWeight { transition, weight } => {
                write!(
                    f,
                    "immediate transition {transition}: invalid weight {weight}"
                )
            }
            PetriError::InvalidMultiplicity { transition, place } => {
                write!(
                    f,
                    "multiplicity out of domain (zero or >= 2^31) on arc {place} <-> {transition}"
                )
            }
            PetriError::UnknownName(n) => write!(f, "unknown name: {n}"),
            PetriError::InvalidConfig {
                what,
                constraint,
                value,
            } => write!(f, "{what}: value {value} violates {constraint}"),
            PetriError::VanishingLoop { time } => {
                write!(f, "immediate transitions loop forever at t = {time}")
            }
            PetriError::ZenoLoop { time, transition } => {
                write!(
                    f,
                    "zero-delay timed loop at t = {time} (transition {transition})"
                )
            }
            PetriError::Unbounded { place, bound } => {
                write!(
                    f,
                    "place {place} exceeds token bound {bound} (net may be unbounded)"
                )
            }
            PetriError::TooManyMarkings { limit } => {
                write!(f, "reachability graph exceeds {limit} markings")
            }
            PetriError::NonExponentialTimed { transition } => write!(
                f,
                "CTMC export needs exponential timed transitions; {transition} is not"
            ),
            PetriError::VanishingCycle { marking } => {
                write!(f, "cycle among vanishing markings at {marking}")
            }
            PetriError::InvariantExplosion { limit } => {
                write!(
                    f,
                    "invariant computation exceeded {limit} intermediate rows"
                )
            }
        }
    }
}

impl std::error::Error for PetriError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PetriError::Stats(e) => Some(e),
            PetriError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for PetriError {
    fn from(e: StatsError) -> Self {
        PetriError::Stats(e)
    }
}

impl From<MarkovError> for PetriError {
    fn from(e: MarkovError) -> Self {
        PetriError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: PetriError = StatsError::InsufficientData {
            what: "x",
            needed: 1,
            got: 0,
        }
        .into();
        assert!(e.to_string().contains("distribution error"));
        assert!(std::error::Error::source(&e).is_some());

        let e: PetriError = MarkovError::Empty.into();
        assert!(e.to_string().contains("markov"));

        assert!(PetriError::VanishingLoop { time: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(PetriError::Unbounded {
            place: "Q".into(),
            bound: 64
        }
        .to_string()
        .contains("Q"));
    }
}
