//! Token markings.

use crate::net::PlaceId;

/// A marking: the token count of every place, indexed by [`PlaceId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking(pub(crate) Vec<u32>);

impl Marking {
    /// A marking with the given per-place counts.
    pub fn new(tokens: Vec<u32>) -> Self {
        Self(tokens)
    }

    /// Token count of `place`.
    #[inline]
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.index()]
    }

    /// Set the token count of `place`.
    #[inline]
    pub fn set_tokens(&mut self, place: PlaceId, tokens: u32) {
        self.0[place.index()] = tokens;
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a zero-place marking.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Total tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.0.iter().map(|&t| t as u64).sum()
    }

    /// Raw slice view (index = place index).
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Weighted token sum `Σ w_p · m(p)` — evaluates a P-invariant.
    pub fn weighted_sum(&self, weights: &[u64]) -> u64 {
        self.0
            .iter()
            .zip(weights)
            .map(|(&m, &w)| m as u64 * w)
            .sum()
    }
}

impl std::fmt::Display for Marking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut m = Marking::new(vec![1, 0, 3]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.total_tokens(), 4);
        assert_eq!(m.tokens(PlaceId(2)), 3);
        m.set_tokens(PlaceId(1), 7);
        assert_eq!(m.tokens(PlaceId(1)), 7);
        assert_eq!(m.as_slice(), &[1, 7, 3]);
        assert_eq!(m.to_string(), "[1 7 3]");
    }

    #[test]
    fn weighted_sum_evaluates_invariants() {
        let m = Marking::new(vec![2, 1, 0]);
        assert_eq!(m.weighted_sum(&[1, 1, 1]), 3);
        assert_eq!(m.weighted_sum(&[0, 5, 9]), 5);
    }
}
