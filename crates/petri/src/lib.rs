//! # wsnem-petri
//!
//! An Extended Deterministic and Stochastic Petri Net (EDSPN) engine — the
//! from-scratch substitute for TimeNET 4.0 that the paper used to build and
//! simulate its CPU model (paper Fig. 3 / Table 1).
//!
//! Features:
//!
//! * **Net structure** ([`net`]): places, immediate transitions with
//!   priorities and weights, timed transitions with exponential /
//!   deterministic / general firing distributions, input, output and
//!   inhibitor arcs with multiplicities, and a serializable [`net::NetSpec`]
//!   exchange format.
//! * **Token game** ([`sim`]): event-driven simulation with vanishing-marking
//!   resolution, race semantics with enabling-memory (resample) or
//!   age-memory policies, marking rewards, warm-up truncation, and
//!   deterministic parallel replications.
//! * **Structural analysis** ([`analysis`]): incidence matrix, P/T-semiflows
//!   (Farkas), bounded reachability graphs, and — for nets whose timed
//!   transitions are all exponential — vanishing elimination into a tangible
//!   CTMC solved exactly by `wsnem-markov`.
//! * **Model library** ([`models`]): classic nets (M/M/1, M/M/1/K,
//!   producer–consumer, fork–join) used by tests, examples and benches.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod error;
pub mod marking;
pub mod models;
pub mod net;
pub mod sim;

pub use dot::to_dot;
pub use error::PetriError;
pub use marking::Marking;
pub use net::{NetBuilder, NetSpec, PetriNet, PlaceId, TimedPolicy, TransitionId, TransitionKind};
pub use sim::{
    simulate, simulate_observed, simulate_replications, PnReplicationSummary, Reward, SimConfig,
    SimOutput,
};
