//! Vanishing elimination: GSPN → tangible CTMC.
//!
//! For nets whose timed transitions are all exponential, the stochastic
//! process over *tangible* markings is a CTMC: firing an exponential
//! transition may land in a vanishing marking, whose immediate firings are
//! folded into branching probabilities (weights over the maximal-priority
//! enabled immediates). Cycles among vanishing markings are rejected — they
//! correspond to immediate loops the simulator would also refuse.

use std::collections::HashMap;

use wsnem_markov::{Ctmc, CtmcBuilder, SteadyStateMethod};

use crate::analysis::reachability::{is_vanishing, ReachOptions};
use crate::error::PetriError;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionKind};

use wsnem_stats::dist::Dist;

/// The tangible-marking CTMC of a GSPN.
#[derive(Debug, Clone)]
pub struct TangibleChain {
    /// Tangible markings (CTMC states), index 0 deterministic from BFS.
    pub markings: Vec<Marking>,
    /// The generator.
    pub ctmc: Ctmc,
    /// Distribution over tangible states corresponding to the net's initial
    /// marking (the initial marking may be vanishing).
    pub initial_distribution: Vec<f64>,
}

impl TangibleChain {
    /// Stationary distribution over tangible markings.
    pub fn steady_state(&self) -> Result<Vec<f64>, PetriError> {
        Ok(self.ctmc.steady_state(SteadyStateMethod::Auto)?)
    }

    /// Expected token count of a place under a distribution `pi`.
    pub fn expected_tokens(&self, pi: &[f64], place: crate::net::PlaceId) -> f64 {
        self.markings
            .iter()
            .zip(pi)
            .map(|(m, p)| m.tokens(place) as f64 * p)
            .sum()
    }

    /// Expected value of an arbitrary marking function under `pi`.
    pub fn expected_reward(&self, pi: &[f64], f: impl Fn(&Marking) -> f64) -> f64 {
        self.markings.iter().zip(pi).map(|(m, p)| f(m) * p).sum()
    }

    /// Transient distribution at time `t` starting from the net's initial
    /// marking.
    pub fn transient(&self, t: f64, tol: f64) -> Result<Vec<f64>, PetriError> {
        Ok(self.ctmc.transient(&self.initial_distribution, t, tol)?)
    }
}

/// Reusable buffers for the vanishing-marking resolution path. Firing an
/// immediate used to allocate a winners vector, a fresh `fire` scratch and
/// an accumulation `HashMap` per marking; these are now reused across every
/// firing of the elimination (the ROADMAP's per-firing-allocation item), so
/// the only allocations left are the successor markings themselves — which
/// escape into the cache/CTMC and are inherent.
#[derive(Default)]
struct VanishingBufs {
    /// Maximal-priority enabled immediates of the marking under resolution.
    winners: Vec<(crate::net::TransitionId, f64)>,
    /// `fire_into` changed-place scratch.
    changed: Vec<u32>,
    /// Pool of branch/accumulation vectors recycled across recursion levels.
    pool: Vec<Vec<(Marking, f64)>>,
}

impl VanishingBufs {
    fn take_vec(&mut self) -> Vec<(Marking, f64)> {
        self.pool.pop().unwrap_or_default()
    }

    fn put_vec(&mut self, mut v: Vec<(Marking, f64)>) {
        v.clear();
        self.pool.push(v);
    }
}

/// Immediate successors of a vanishing marking with branching
/// probabilities, written into `out` (cleared first) without per-firing
/// allocations beyond the successor markings.
fn immediate_branches_into(
    net: &PetriNet,
    m: &Marking,
    bufs: &mut VanishingBufs,
    out: &mut Vec<(Marking, f64)>,
) {
    let mut best_priority = 0u8;
    bufs.winners.clear();
    for t in net.transitions() {
        if let TransitionKind::Immediate { priority, weight } = net.kind(t) {
            if net.is_enabled(m, t) {
                if bufs.winners.is_empty() || priority > best_priority {
                    bufs.winners.clear();
                    bufs.winners.push((t, weight));
                    best_priority = priority;
                } else if priority == best_priority {
                    bufs.winners.push((t, weight));
                }
            }
        }
    }
    let total: f64 = bufs.winners.iter().map(|(_, w)| w).sum();
    out.clear();
    for i in 0..bufs.winners.len() {
        let (t, w) = bufs.winners[i];
        let mut next = m.clone();
        net.fire_into(&mut next, t.index() as u32, &mut bufs.changed);
        out.push((next, w / total));
    }
}

/// Resolve a (possibly vanishing) marking into a distribution over tangible
/// markings, detecting vanishing cycles via the DFS stack.
fn resolve(
    net: &PetriNet,
    m: &Marking,
    cache: &mut HashMap<Marking, Vec<(Marking, f64)>>,
    stack: &mut Vec<Marking>,
    bufs: &mut VanishingBufs,
) -> Result<Vec<(Marking, f64)>, PetriError> {
    if !is_vanishing(net, m) {
        return Ok(vec![(m.clone(), 1.0)]);
    }
    if let Some(hit) = cache.get(m) {
        return Ok(hit.clone());
    }
    if stack.contains(m) {
        return Err(PetriError::VanishingCycle {
            marking: m.to_string(),
        });
    }
    stack.push(m.clone());
    let mut branches = bufs.take_vec();
    immediate_branches_into(net, m, bufs, &mut branches);
    // Accumulate tangible probabilities with linear-search dedup: branch
    // sets are tiny (one entry per maximal-priority immediate), so this
    // beats a per-call HashMap — and the vector is recycled via the pool.
    let mut acc = bufs.take_vec();
    let mut resolution = Ok(());
    'outer: for (next, p) in branches.drain(..) {
        match resolve(net, &next, cache, stack, bufs) {
            Err(e) => {
                resolution = Err(e);
                break 'outer;
            }
            Ok(tangibles) => {
                for (tang, q) in tangibles {
                    match acc.iter_mut().find(|(t, _)| *t == tang) {
                        Some((_, prob)) => *prob += p * q,
                        None => acc.push((tang, p * q)),
                    }
                }
            }
        }
    }
    bufs.put_vec(branches);
    stack.pop();
    resolution?;
    // Deterministic order for reproducible CTMC construction.
    acc.sort_by(|a, b| a.0.as_slice().cmp(b.0.as_slice()));
    cache.insert(m.clone(), acc.clone());
    Ok(acc)
}

/// Build the tangible CTMC of `net`.
///
/// Errors with [`PetriError::NonExponentialTimed`] if any timed transition
/// has a non-exponential distribution (deterministic transitions need either
/// simulation or phase-type approximation — see `wsnem-markov::phase`).
pub fn tangible_chain(net: &PetriNet, opts: ReachOptions) -> Result<TangibleChain, PetriError> {
    // Precondition: exponential timed transitions only.
    let mut rates: Vec<Option<f64>> = vec![None; net.n_transitions()];
    for t in net.transitions() {
        match net.kind(t) {
            TransitionKind::Immediate { .. } => {}
            TransitionKind::Timed { dist, .. } => match dist {
                Dist::Exponential { rate } => rates[t.index()] = Some(rate),
                _ => {
                    return Err(PetriError::NonExponentialTimed {
                        transition: net.transition_name(t).to_owned(),
                    })
                }
            },
        }
    }

    let mut cache: HashMap<Marking, Vec<(Marking, f64)>> = HashMap::new();
    let mut stack: Vec<Marking> = Vec::new();
    let mut bufs = VanishingBufs::default();

    let mut markings: Vec<Marking> = Vec::new();
    let mut index: HashMap<Marking, u32> = HashMap::new();
    let intern = |m: Marking,
                  markings: &mut Vec<Marking>,
                  index: &mut HashMap<Marking, u32>|
     -> Result<u32, PetriError> {
        if let Some(&i) = index.get(&m) {
            return Ok(i);
        }
        for p in net.places() {
            if m.tokens(p) > opts.max_tokens {
                return Err(PetriError::Unbounded {
                    place: net.place_name(p).to_owned(),
                    bound: opts.max_tokens,
                });
            }
        }
        if markings.len() >= opts.max_markings {
            return Err(PetriError::TooManyMarkings {
                limit: opts.max_markings,
            });
        }
        let i = markings.len() as u32;
        index.insert(m.clone(), i);
        markings.push(m);
        Ok(i)
    };

    // Initial distribution over tangible states.
    let init_branches = resolve(
        net,
        &net.initial_marking(),
        &mut cache,
        &mut stack,
        &mut bufs,
    )?;
    let mut init_pairs: Vec<(u32, f64)> = Vec::new();
    for (m, p) in init_branches {
        let i = intern(m, &mut markings, &mut index)?;
        init_pairs.push((i, p));
    }

    // BFS over tangible markings, accumulating rate triplets.
    let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
    let mut frontier = 0usize;
    while frontier < markings.len() {
        let m = markings[frontier].clone();
        for t in net.transitions() {
            let Some(rate) = rates[t.index()] else {
                continue;
            };
            if !net.is_enabled(&m, t) {
                continue;
            }
            let mut next = m.clone();
            net.fire_into(&mut next, t.index() as u32, &mut bufs.changed);
            for (tang, p) in resolve(net, &next, &mut cache, &mut stack, &mut bufs)? {
                let j = intern(tang, &mut markings, &mut index)?;
                if j != frontier as u32 {
                    triplets.push((frontier as u32, j, rate * p));
                }
            }
        }
        frontier += 1;
    }

    let mut builder = CtmcBuilder::new(markings.len());
    for (i, j, r) in triplets {
        builder.rate(i as usize, j as usize, r)?;
    }
    let ctmc = builder.build()?;
    let mut initial_distribution = vec![0.0; markings.len()];
    for (i, p) in init_pairs {
        initial_distribution[i as usize] += p;
    }
    Ok(TangibleChain {
        markings,
        ctmc,
        initial_distribution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    /// M/M/1/K as a net: steady state must match the closed form.
    #[test]
    fn mm1k_matches_closed_form() {
        let (lam, mu, k) = (1.0, 2.0, 5u32);
        let mut b = NetBuilder::new();
        let q = b.place("Queue", 0);
        let arrive = b.exponential("arrive", lam);
        b.output_arc(arrive, q, 1);
        b.inhibitor_arc(q, arrive, k);
        let serve = b.exponential("serve", mu);
        b.input_arc(q, serve, 1);
        let net = b.build().unwrap();

        let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
        assert_eq!(chain.markings.len(), k as usize + 1);
        let pi = chain.steady_state().unwrap();
        let closed = wsnem_markov::mm1k(lam, mu, k).unwrap();
        // Markings are interned in BFS order 0,1,...,k tokens.
        for (i, m) in chain.markings.iter().enumerate() {
            let n = m.tokens(q);
            assert!(
                (pi[i] - closed.p_n(n)).abs() < 1e-9,
                "state {n}: {} vs {}",
                pi[i],
                closed.p_n(n)
            );
        }
        let l = chain.expected_tokens(&pi, q);
        assert!((l - closed.mean_jobs()).abs() < 1e-9);
    }

    /// Immediate transitions fold away: src --exp--> Wait --imm--> Busy
    /// --exp--> Idle behaves as a two-state CTMC.
    #[test]
    fn vanishing_elimination_two_state() {
        let mut b = NetBuilder::new();
        let idle = b.place("IdleP", 1);
        let wait = b.place("Wait", 0);
        let busy = b.place("Busy", 0);
        let go = b.exponential("go", 2.0);
        b.input_arc(idle, go, 1);
        b.output_arc(go, wait, 1);
        let im = b.immediate("im", 1, 1.0);
        b.input_arc(wait, im, 1);
        b.output_arc(im, busy, 1);
        let done = b.exponential("done", 3.0);
        b.input_arc(busy, done, 1);
        b.output_arc(done, idle, 1);
        let net = b.build().unwrap();

        let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
        assert_eq!(chain.markings.len(), 2, "Wait marking is vanishing");
        let pi = chain.steady_state().unwrap();
        let busy_p = chain.expected_tokens(&pi, busy);
        // Two-state chain rates (2,3): P(busy) = 2/5.
        assert!((busy_p - 0.4).abs() < 1e-9, "{busy_p}");
        // Initial distribution is tangible Idle.
        assert!((chain.initial_distribution.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    /// Weighted immediate branching: exp source feeds an immediate conflict
    /// with weights 3:1 into two drained queues; throughput ratio must be 3.
    #[test]
    fn weighted_branching_probabilities() {
        let mut b = NetBuilder::new();
        let choice = b.place("Choice", 0);
        let qa = b.place("QA", 0);
        let qb = b.place("QB", 0);
        let src = b.exponential("src", 1.0);
        b.output_arc(src, choice, 1);
        // Keep the net bounded: src inhibited while a choice is pending or
        // either queue holds a token.
        b.inhibitor_arc(choice, src, 1);
        b.inhibitor_arc(qa, src, 1);
        b.inhibitor_arc(qb, src, 1);
        let ta = b.immediate("ta", 1, 3.0);
        b.input_arc(choice, ta, 1);
        b.output_arc(ta, qa, 1);
        let tb = b.immediate("tb", 1, 1.0);
        b.input_arc(choice, tb, 1);
        b.output_arc(tb, qb, 1);
        let da = b.exponential("da", 5.0);
        b.input_arc(qa, da, 1);
        let db = b.exponential("db", 5.0);
        b.input_arc(qb, db, 1);
        let net = b.build().unwrap();

        let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
        let pi = chain.steady_state().unwrap();
        let pa = chain.expected_tokens(&pi, qa);
        let pb = chain.expected_tokens(&pi, qb);
        // Same drain rate → occupancy ratio equals branching ratio.
        assert!((pa / pb - 3.0).abs() < 1e-6, "ratio {}", pa / pb);
    }

    #[test]
    fn deterministic_transition_rejected() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let t = b.deterministic("t", 1.0);
        b.input_arc(p, t, 1);
        b.output_arc(t, p, 1);
        let net = b.build().unwrap();
        assert!(matches!(
            tangible_chain(&net, ReachOptions::default()),
            Err(PetriError::NonExponentialTimed { .. })
        ));
    }

    #[test]
    fn vanishing_cycle_rejected() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 0);
        let p1 = b.place("P1", 0);
        let src = b.exponential("src", 1.0);
        b.output_arc(src, p0, 1);
        b.inhibitor_arc(p0, src, 2);
        let t01 = b.immediate("a", 1, 1.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        let t10 = b.immediate("bk", 1, 1.0);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        assert!(matches!(
            tangible_chain(&net, ReachOptions::default()),
            Err(PetriError::VanishingCycle { .. })
        ));
    }

    /// The CTMC path and the simulator agree on an exponential-only net.
    #[test]
    fn ctmc_and_simulation_agree() {
        let mut b = NetBuilder::new();
        let q = b.place("Queue", 0);
        let arrive = b.exponential("arrive", 1.0);
        b.output_arc(arrive, q, 1);
        b.inhibitor_arc(q, arrive, 6);
        let serve = b.exponential("serve", 1.5);
        b.input_arc(q, serve, 1);
        let net = b.build().unwrap();

        let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
        let pi = chain.steady_state().unwrap();
        let exact_l = chain.expected_tokens(&pi, q);

        let cfg = crate::sim::SimConfig {
            horizon: 60_000.0,
            warmup: 500.0,
            ..crate::sim::SimConfig::default()
        };
        let mut rng = wsnem_stats::rng::Xoshiro256PlusPlus::new(17);
        let out = crate::sim::simulate(&net, &cfg, &[], &mut rng).unwrap();
        assert!(
            (out.place_means[0] - exact_l).abs() < 0.05,
            "sim {} vs exact {exact_l}",
            out.place_means[0]
        );
    }

    #[test]
    fn transient_from_initial() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.exponential("t01", 1.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        let t10 = b.exponential("t10", 1.0);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
        let p = chain.transient(1000.0, 1e-9).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-6);
    }
}
