//! Siphons, traps and deadlock-witness classification.
//!
//! A **siphon** is a place set `S` with `•S ⊆ S•`: every transition that
//! deposits a token into `S` also consumes one from `S`, so once `S` is
//! empty it stays empty forever. A **trap** is the dual (`S• ⊆ •S`): once
//! marked, it stays marked. For an ordinary (inhibitor-free) net, every dead
//! marking empties some siphon — which makes the maximal unmarked siphon the
//! classical *witness* for a deadlock. Inhibitor arcs break that theorem:
//! a marking can enable no transition while every place keeps tokens. The
//! [`explain_dead_marking`] classifier reports which of the two regimes a
//! dead marking is in.

use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};

fn in_set(set: &[PlaceId], p: PlaceId) -> bool {
    set.contains(&p)
}

/// True iff `set` is a siphon: every transition producing into the set also
/// consumes from it. The empty set is trivially a siphon.
pub fn is_siphon(net: &PetriNet, set: &[PlaceId]) -> bool {
    net.transitions().all(|t| {
        let produces = net.outputs(t).any(|(p, _)| in_set(set, p));
        !produces || net.inputs(t).any(|(p, _)| in_set(set, p))
    })
}

/// True iff `set` is a trap: every transition consuming from the set also
/// produces into it. The empty set is trivially a trap.
pub fn is_trap(net: &PetriNet, set: &[PlaceId]) -> bool {
    net.transitions().all(|t| {
        let consumes = net.inputs(t).any(|(p, _)| in_set(set, p));
        !consumes || net.outputs(t).any(|(p, _)| in_set(set, p))
    })
}

/// The maximal siphon contained in `candidates` (possibly empty).
///
/// Iteratively discards any place with a producer transition taking no input
/// from the remaining set; what survives satisfies the siphon property, and
/// maximality follows because only provably non-siphon places are removed.
pub fn maximal_siphon_within(net: &PetriNet, candidates: &[PlaceId]) -> Vec<PlaceId> {
    let mut set: Vec<PlaceId> = candidates.to_vec();
    loop {
        let violating = set.iter().position(|&p| {
            net.transitions().any(|t| {
                net.outputs(t).any(|(q, _)| q == p) && !net.inputs(t).any(|(q, _)| in_set(&set, q))
            })
        });
        match violating {
            Some(i) => {
                set.remove(i);
            }
            None => return set,
        }
    }
}

/// Why a dead marking is dead: the classical empty-siphon witness and/or the
/// inhibitor arcs that block otherwise token-enabled transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockExplanation {
    /// The maximal siphon among the marking's empty places. Non-empty means
    /// the classical starvation argument applies: these places can never be
    /// re-marked, so their output transitions are dead from here on.
    pub empty_siphon: Vec<PlaceId>,
    /// Transitions whose input arcs are satisfied at the marking but which
    /// an inhibitor arc disables. Non-empty with an empty siphon witness
    /// means the deadlock is purely inhibitor-induced.
    pub inhibitor_blocked: Vec<TransitionId>,
}

impl DeadlockExplanation {
    /// True when no empty siphon explains the deadlock and at least one
    /// transition is held back only by an inhibitor arc.
    pub fn is_inhibitor_induced(&self) -> bool {
        self.empty_siphon.is_empty() && !self.inhibitor_blocked.is_empty()
    }
}

/// Classify a dead marking (one enabling no transition).
///
/// The result is meaningful for any marking, but is intended for deadlocks
/// found by [`super::explore`]: it names the empty siphon that starves the
/// net, or the inhibitor arcs that freeze it, or both.
pub fn explain_dead_marking(net: &PetriNet, m: &Marking) -> DeadlockExplanation {
    let empty: Vec<PlaceId> = net.places().filter(|&p| m.tokens(p) == 0).collect();
    let empty_siphon = maximal_siphon_within(net, &empty);
    let inhibitor_blocked = net
        .transitions()
        .filter(|&t| {
            net.inputs(t).all(|(p, mult)| m.tokens(p) >= mult)
                && net.inhibitors(t).any(|(p, th)| m.tokens(p) >= th)
        })
        .collect();
    DeadlockExplanation {
        empty_siphon,
        inhibitor_blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    /// P0 -> t -> P1, no way back: {P0} is a siphon, {P1} a trap.
    fn one_shot() -> (PetriNet, PlaceId, PlaceId) {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(p0, t, 1);
        b.output_arc(t, p1, 1);
        (b.build().unwrap(), p0, p1)
    }

    #[test]
    fn siphon_and_trap_classification() {
        let (net, p0, p1) = one_shot();
        assert!(is_siphon(&net, &[p0]), "no producer into P0");
        assert!(!is_siphon(&net, &[p1]), "t produces into P1 from outside");
        assert!(is_trap(&net, &[p1]), "no consumer out of P1");
        assert!(!is_trap(&net, &[p0]), "t drains P0 without refilling");
        // Empty set is trivially both.
        assert!(is_siphon(&net, &[]));
        assert!(is_trap(&net, &[]));
        // The union is both a siphon and a trap (t moves within the set).
        assert!(is_siphon(&net, &[p0, p1]));
        assert!(is_trap(&net, &[p0, p1]));
    }

    #[test]
    fn maximal_siphon_filters_producible_places() {
        let (net, p0, p1) = one_shot();
        // Among {P0, P1}: both survive (t stays inside the set).
        let s = maximal_siphon_within(&net, &[p0, p1]);
        assert_eq!(s, vec![p0, p1]);
        // Among {P1} alone: t produces into P1 from P0 outside the set.
        assert!(maximal_siphon_within(&net, &[p1]).is_empty());
        assert_eq!(maximal_siphon_within(&net, &[p0]), vec![p0]);
    }

    #[test]
    fn classic_deadlock_names_the_empty_siphon() {
        let (net, p0, _) = one_shot();
        let t = net.find_transition("t").unwrap();
        let dead = net.fire(&net.initial_marking(), t); // P0=0, P1=1
        assert!(net.enabled_transitions(&dead).is_empty());
        let why = explain_dead_marking(&net, &dead);
        assert_eq!(why.empty_siphon, vec![p0]);
        assert!(why.inhibitor_blocked.is_empty());
        assert!(!why.is_inhibitor_induced());
    }

    #[test]
    fn inhibitor_deadlock_classified() {
        // t: A -> B, inhibited once B holds a token. After one firing A=1,
        // B=1 and t is frozen by the inhibitor alone — no empty place at
        // all, so no siphon witness exists.
        let mut b = NetBuilder::new();
        let a = b.place("A", 2);
        let bb = b.place("B", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(a, t, 1);
        b.output_arc(t, bb, 1);
        b.inhibitor_arc(bb, t, 1);
        let net = b.build().unwrap();
        let t_id = net.find_transition("t").unwrap();
        let dead = net.fire(&net.initial_marking(), t_id); // A=1, B=1
        assert!(net.enabled_transitions(&dead).is_empty());
        let why = explain_dead_marking(&net, &dead);
        assert!(why.empty_siphon.is_empty());
        assert_eq!(why.inhibitor_blocked, vec![t_id]);
        assert!(why.is_inhibitor_induced());
    }
}
