//! Cheap structural analyses: conflict sets, sources/sinks, and the classic
//! net-class tests (state machine, marked graph, free choice).
//!
//! These run on the net structure alone (no state-space exploration) and
//! are what a modeler checks first: the paper's Fig. 3 net, for instance,
//! is *not* free-choice — T2/T5/PDT compete for `CPU_ON` with different
//! guards — which is exactly why priorities and inhibitor arcs are needed
//! to make its behaviour deterministic.

use crate::net::{PetriNet, PlaceId, TransitionId};

/// Transitions that share at least one input place with another transition,
/// grouped by place: `(place, competing transitions)` for every place with
/// ≥ 2 consumers.
pub fn conflict_sets(net: &PetriNet) -> Vec<(PlaceId, Vec<TransitionId>)> {
    let mut consumers: Vec<Vec<TransitionId>> = vec![Vec::new(); net.n_places()];
    for t in net.transitions() {
        for (p, _) in net.inputs(t) {
            consumers[p.index()].push(t);
        }
    }
    net.places()
        .filter(|p| consumers[p.index()].len() >= 2)
        .map(|p| (p, consumers[p.index()].clone()))
        .collect()
}

/// Transitions with no input arcs (always enabled unless inhibited) —
/// open-workload generators like the M/M/1 `arrive`.
pub fn source_transitions(net: &PetriNet) -> Vec<TransitionId> {
    net.transitions()
        .filter(|&t| net.inputs(t).next().is_none())
        .collect()
}

/// Transitions with no output arcs (token sinks).
pub fn sink_transitions(net: &PetriNet) -> Vec<TransitionId> {
    net.transitions()
        .filter(|&t| net.outputs(t).next().is_none())
        .collect()
}

/// Places not connected to any arc at all.
pub fn isolated_places(net: &PetriNet) -> Vec<PlaceId> {
    let mut touched = vec![false; net.n_places()];
    for t in net.transitions() {
        for (p, _) in net.inputs(t).chain(net.outputs(t)).chain(net.inhibitors(t)) {
            touched[p.index()] = true;
        }
    }
    net.places().filter(|p| !touched[p.index()]).collect()
}

/// State machine: every transition has exactly one input and one output
/// place (tokens never fork or join).
pub fn is_state_machine(net: &PetriNet) -> bool {
    net.transitions().all(|t| {
        net.inputs(t).map(|(_, m)| m as usize).sum::<usize>() == 1
            && net.outputs(t).map(|(_, m)| m as usize).sum::<usize>() == 1
    })
}

/// Marked graph: every place has exactly one producer and one consumer
/// (no conflicts anywhere).
pub fn is_marked_graph(net: &PetriNet) -> bool {
    let mut produced = vec![0usize; net.n_places()];
    let mut consumed = vec![0usize; net.n_places()];
    for t in net.transitions() {
        for (p, m) in net.inputs(t) {
            consumed[p.index()] += m as usize;
        }
        for (p, m) in net.outputs(t) {
            produced[p.index()] += m as usize;
        }
    }
    (0..net.n_places()).all(|p| produced[p] == 1 && consumed[p] == 1)
}

/// Free choice: whenever two transitions share an input place, that place
/// is their only input (conflicts are resolved by pure chance, never by
/// context). Inhibitor arcs break free choice by definition.
pub fn is_free_choice(net: &PetriNet) -> bool {
    if net
        .transitions()
        .any(|t| net.inhibitors(t).next().is_some())
    {
        return false;
    }
    for (_, competitors) in conflict_sets(net) {
        for &t in &competitors {
            if net.inputs(t).count() != 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    /// Simple cycle: state machine AND marked graph AND free choice.
    fn cycle() -> PetriNet {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let a = b.exponential("a", 1.0);
        b.input_arc(p0, a, 1);
        b.output_arc(a, p1, 1);
        let c = b.exponential("c", 1.0);
        b.input_arc(p1, c, 1);
        b.output_arc(c, p0, 1);
        b.build().unwrap()
    }

    #[test]
    fn cycle_classifications() {
        let net = cycle();
        assert!(is_state_machine(&net));
        assert!(is_marked_graph(&net));
        assert!(is_free_choice(&net));
        assert!(conflict_sets(&net).is_empty());
        assert!(source_transitions(&net).is_empty());
        assert!(sink_transitions(&net).is_empty());
        assert!(isolated_places(&net).is_empty());
    }

    #[test]
    fn conflict_detection() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let t1 = b.immediate("t1", 1, 1.0);
        b.input_arc(p, t1, 1);
        let t2 = b.immediate("t2", 1, 1.0);
        b.input_arc(p, t2, 1);
        let net = b.build().unwrap();
        let cs = conflict_sets(&net);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].1.len(), 2);
        assert!(is_free_choice(&net), "pure conflict is free choice");
        assert!(!is_marked_graph(&net));
        // Both are sinks (no outputs).
        assert_eq!(sink_transitions(&net).len(), 2);
    }

    #[test]
    fn context_breaks_free_choice() {
        // t2 has a second input → choice between t1/t2 depends on context.
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let q = b.place("Q", 1);
        let t1 = b.immediate("t1", 1, 1.0);
        b.input_arc(p, t1, 1);
        let t2 = b.immediate("t2", 1, 1.0);
        b.input_arc(p, t2, 1);
        b.input_arc(q, t2, 1);
        let net = b.build().unwrap();
        assert!(!is_free_choice(&net));
    }

    #[test]
    fn sources_sinks_isolated() {
        let mut b = NetBuilder::new();
        let _lonely = b.place("Lonely", 3);
        let q = b.place("Q", 0);
        let src = b.exponential("src", 1.0);
        b.output_arc(src, q, 1);
        let sink = b.exponential("sink", 1.0);
        b.input_arc(q, sink, 1);
        let net = b.build().unwrap();
        assert_eq!(source_transitions(&net).len(), 1);
        assert_eq!(sink_transitions(&net).len(), 1);
        assert_eq!(isolated_places(&net).len(), 1);
        assert!(!is_state_machine(&net), "source has no input");
    }

    #[test]
    fn paper_net_is_not_free_choice() {
        // The Fig. 3 net needs priorities + inhibitors precisely because it
        // is not free choice: T2/T5/PDT all compete for CPU_ON in context.
        let mut b = NetBuilder::new();
        let on = b.place("CPU_ON", 1);
        let buf = b.place("Buf", 1);
        let p6 = b.place("P6", 1);
        let t2 = b.immediate("T2", 1, 1.0);
        b.input_arc(on, t2, 1);
        b.input_arc(buf, t2, 1);
        b.output_arc(t2, on, 1);
        let t5 = b.immediate("T5", 2, 1.0);
        b.input_arc(on, t5, 1);
        b.input_arc(p6, t5, 1);
        b.output_arc(t5, on, 1);
        let pdt = b.deterministic("PDT", 0.5);
        b.input_arc(on, pdt, 1);
        b.inhibitor_arc(buf, pdt, 1);
        let net = b.build().unwrap();
        assert!(!is_free_choice(&net));
        let cs = conflict_sets(&net);
        assert!(cs
            .iter()
            .any(|(p, ts)| { net.place_name(*p) == "CPU_ON" && ts.len() == 3 }));
    }

    #[test]
    fn inhibitors_alone_break_free_choice() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let q = b.place("Q", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(p, t, 1);
        b.inhibitor_arc(q, t, 1);
        let net = b.build().unwrap();
        assert!(!is_free_choice(&net));
    }
}
