//! Dead-transition detection.
//!
//! Two complementary notions:
//!
//! * **Structurally dead** ([`structurally_dead_transitions`]): a transition
//!   with an input place that can *never* carry a token, established by a
//!   marking-closure fixpoint that over-approximates the markable places
//!   (inhibitors and multiplicities ignored). Sound under every timing and
//!   firing policy, and independent of exploration budgets.
//! * **Behaviorally dead** ([`dead_transitions`]): a transition that fires on
//!   no edge of a *complete* reachability graph. Exact, but only meaningful
//!   when [`super::explore`] terminated within its budgets — a truncated
//!   graph proves nothing about liveness.

use crate::analysis::reachability::ReachabilityGraph;
use crate::net::{PetriNet, TransitionId};

/// Transitions that fire on no edge of `graph`.
///
/// When `graph` is the full reachability graph of `net`, these transitions
/// are dead: no reachable marking ever fires them. On a truncated graph the
/// result is only "not observed within the explored prefix".
pub fn dead_transitions(net: &PetriNet, graph: &ReachabilityGraph) -> Vec<TransitionId> {
    let mut fired = vec![false; net.n_transitions()];
    for &(_, t, _) in &graph.edges {
        fired[t as usize] = true;
    }
    net.transitions().filter(|t| !fired[t.index()]).collect()
}

/// Transitions that can never fire, by structure alone.
///
/// Computes the closure of potentially-markable places: places with initial
/// tokens seed the set; any transition whose every input place is in the set
/// is potentially fireable and adds its output places; repeat to a fixpoint.
/// A transition left non-fireable has an input place no firing sequence can
/// ever mark, so it is dead under *any* semantics. The approximation ignores
/// arc multiplicities and inhibitor arcs, so it never reports false
/// positives (a fireable transition is always classified fireable).
pub fn structurally_dead_transitions(net: &PetriNet) -> Vec<TransitionId> {
    let m0 = net.initial_marking();
    let mut markable: Vec<bool> = net.places().map(|p| m0.tokens(p) > 0).collect();
    let mut fireable = vec![false; net.n_transitions()];
    loop {
        let mut changed = false;
        for t in net.transitions() {
            if fireable[t.index()] {
                continue;
            }
            if net.inputs(t).all(|(p, _)| markable[p.index()]) {
                fireable[t.index()] = true;
                changed = true;
                for (p, _) in net.outputs(t) {
                    markable[p.index()] = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    net.transitions().filter(|t| !fireable[t.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::reachability::{explore, ReachOptions};
    use crate::net::NetBuilder;

    #[test]
    fn live_cycle_has_no_dead_transitions() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.exponential("t01", 1.0);
        let t10 = b.exponential("t10", 1.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        let g = explore(&net, ReachOptions::default()).unwrap();
        assert!(dead_transitions(&net, &g).is_empty());
        assert!(structurally_dead_transitions(&net).is_empty());
    }

    #[test]
    fn starved_transition_is_dead_both_ways() {
        // `t`'s input place Never has no producer and no initial token.
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let never = b.place("Never", 0);
        let live = b.exponential("live", 1.0);
        b.input_arc(p0, live, 1);
        b.output_arc(live, p1, 1);
        let t = b.exponential("t", 1.0);
        b.input_arc(never, t, 1);
        b.output_arc(t, p0, 1);
        let net = b.build().unwrap();

        let structural = structurally_dead_transitions(&net);
        assert_eq!(structural.len(), 1);
        assert_eq!(net.transition_name(structural[0]), "t");

        let g = explore(&net, ReachOptions::default()).unwrap();
        let behavioral = dead_transitions(&net, &g);
        assert_eq!(behavioral.len(), 1);
        assert_eq!(net.transition_name(behavioral[0]), "t");
    }

    #[test]
    fn structural_closure_chains_through_transitions() {
        // A -> t1 -> B -> t2 -> C: everything fireable from A's token.
        let mut b = NetBuilder::new();
        let a = b.place("A", 1);
        let bb = b.place("B", 0);
        let c = b.place("C", 0);
        let t1 = b.exponential("t1", 1.0);
        b.input_arc(a, t1, 1);
        b.output_arc(t1, bb, 1);
        let t2 = b.exponential("t2", 1.0);
        b.input_arc(bb, t2, 1);
        b.output_arc(t2, c, 1);
        let net = b.build().unwrap();
        assert!(structurally_dead_transitions(&net).is_empty());
    }

    #[test]
    fn behaviorally_dead_but_structurally_plausible() {
        // Priorities starve `low`: `high` always wins the conflict for P's
        // single token, so `low` never fires — invisible to the structural
        // over-approximation, caught in the full graph.
        let mut b = NetBuilder::new();
        let src = b.place("Src", 1);
        let p = b.place("P", 0);
        let high_out = b.place("HighOut", 0);
        let low_out = b.place("LowOut", 0);
        let feed = b.immediate("feed", 1, 1.0);
        b.input_arc(src, feed, 1);
        b.output_arc(feed, p, 1);
        let high = b.immediate("high", 3, 1.0);
        b.input_arc(p, high, 1);
        b.output_arc(high, high_out, 1);
        let low = b.immediate("low", 2, 1.0);
        b.input_arc(p, low, 1);
        b.output_arc(low, low_out, 1);
        let net = b.build().unwrap();

        assert!(structurally_dead_transitions(&net).is_empty());
        let g = explore(&net, ReachOptions::default()).unwrap();
        let dead = dead_transitions(&net, &g);
        assert_eq!(dead.len(), 1);
        assert_eq!(net.transition_name(dead[0]), "low");
    }
}
