//! Incidence matrix and semiflow (invariant) computation.
//!
//! A **P-semiflow** is a non-negative integer weighting `x` of places with
//! `xᵀC = 0`; the weighted token count `x·m` is then constant over every
//! reachable marking. Semiflows are found with the classical Farkas
//! iteration over `[Cᵀ | I]` rows, gcd-normalized and reduced to minimal
//! support.

use crate::error::PetriError;
use crate::net::PetriNet;

/// Incidence matrix `C[p][t] = post(t,p) − pre(t,p)` (inhibitors excluded —
/// they constrain enabling, not token flow).
pub fn incidence_matrix(net: &PetriNet) -> Vec<Vec<i64>> {
    let mut c = vec![vec![0i64; net.n_transitions()]; net.n_places()];
    for t in net.transitions() {
        for (p, m) in net.inputs(t) {
            c[p.index()][t.index()] -= m as i64;
        }
        for (p, m) in net.outputs(t) {
            c[p.index()][t.index()] += m as i64;
        }
    }
    c
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Farkas iteration: find the non-negative integer left-null-space basis of
/// `matrix` (rows × cols), returning minimal-support solutions over rows.
///
/// `matrix[r][c]`: the constraint matrix; solutions x satisfy
/// `Σ_r x_r · matrix[r][c] = 0` for every column c.
fn farkas(matrix: &[Vec<i64>], row_budget: usize) -> Result<Vec<Vec<u64>>, PetriError> {
    let n_rows = matrix.len();
    let n_cols = if n_rows == 0 { 0 } else { matrix[0].len() };

    // Working rows: (constraint part, identity part).
    let mut rows: Vec<(Vec<i64>, Vec<u64>)> = (0..n_rows)
        .map(|r| {
            let mut id = vec![0u64; n_rows];
            id[r] = 1;
            (matrix[r].clone(), id)
        })
        .collect();

    for c in 0..n_cols {
        let mut zero: Vec<(Vec<i64>, Vec<u64>)> = Vec::new();
        let mut pos: Vec<(Vec<i64>, Vec<u64>)> = Vec::new();
        let mut neg: Vec<(Vec<i64>, Vec<u64>)> = Vec::new();
        for row in rows {
            match row.0[c].cmp(&0) {
                std::cmp::Ordering::Equal => zero.push(row),
                std::cmp::Ordering::Greater => pos.push(row),
                std::cmp::Ordering::Less => neg.push(row),
            }
        }
        for p in &pos {
            for n in &neg {
                let a = p.0[c].unsigned_abs();
                let b = n.0[c].unsigned_abs();
                let g = gcd(a, b);
                let (ca, cb) = ((b / g) as i64, (a / g) as i64);
                let cons: Vec<i64> = p.0.iter().zip(&n.0).map(|(x, y)| ca * x + cb * y).collect();
                let id: Vec<u64> =
                    p.1.iter()
                        .zip(&n.1)
                        .map(|(x, y)| ca as u64 * x + cb as u64 * y)
                        .collect();
                debug_assert_eq!(cons[c], 0);
                zero.push((cons, id));
                if zero.len() > row_budget {
                    return Err(PetriError::InvariantExplosion { limit: row_budget });
                }
            }
        }
        rows = zero;
    }

    // Normalize by gcd, drop zero rows, dedupe.
    let mut result: Vec<Vec<u64>> = Vec::new();
    for (_, id) in rows {
        let g = id.iter().fold(0u64, |acc, &v| gcd(acc, v));
        if g == 0 {
            continue;
        }
        let normalized: Vec<u64> = id.iter().map(|v| v / g).collect();
        if !result.contains(&normalized) {
            result.push(normalized);
        }
    }

    // Keep only minimal-support semiflows.
    let support = |v: &[u64]| -> Vec<usize> {
        v.iter()
            .enumerate()
            .filter(|(_, &x)| x > 0)
            .map(|(i, _)| i)
            .collect()
    };
    let supports: Vec<Vec<usize>> = result.iter().map(|v| support(v)).collect();
    let minimal: Vec<Vec<u64>> = result
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            !supports.iter().enumerate().any(|(j, sj)| {
                j != *i
                    && sj.len() < supports[*i].len()
                    && sj.iter().all(|e| supports[*i].contains(e))
            })
        })
        .map(|(_, v)| v.clone())
        .collect();
    Ok(minimal)
}

/// Non-negative place invariants (P-semiflows). Each result has one weight
/// per place; `weights · marking` is invariant under every firing.
pub fn p_semiflows(net: &PetriNet) -> Result<Vec<Vec<u64>>, PetriError> {
    let c = incidence_matrix(net);
    farkas(&c, 100_000)
}

/// Non-negative transition invariants (T-semiflows). Each result has one
/// weight per transition; firing every transition `weights[t]` times
/// reproduces the starting marking.
pub fn t_semiflows(net: &PetriNet) -> Result<Vec<Vec<u64>>, PetriError> {
    let c = incidence_matrix(net);
    let n_p = net.n_places();
    let n_t = net.n_transitions();
    let mut ct = vec![vec![0i64; n_p]; n_t];
    for (p, row) in c.iter().enumerate() {
        for (t, &v) in row.iter().enumerate() {
            ct[t][p] = v;
        }
    }
    farkas(&ct, 100_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    /// Simple cycle: token circulates P0 → P1 → P0.
    fn cycle_net() -> PetriNet {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.exponential("t01", 1.0);
        let t10 = b.exponential("t10", 1.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        b.build().unwrap()
    }

    #[test]
    fn incidence_of_cycle() {
        let net = cycle_net();
        let c = incidence_matrix(&net);
        assert_eq!(c, vec![vec![-1, 1], vec![1, -1]]);
    }

    #[test]
    fn cycle_invariants() {
        let net = cycle_net();
        let p = p_semiflows(&net).unwrap();
        assert_eq!(p, vec![vec![1, 1]], "token conservation P0+P1");
        let t = t_semiflows(&net).unwrap();
        assert_eq!(t, vec![vec![1, 1]], "firing both restores the marking");
    }

    #[test]
    fn semiflows_annihilate_incidence() {
        let net = cycle_net();
        let c = incidence_matrix(&net);
        for x in p_semiflows(&net).unwrap() {
            for t in 0..net.n_transitions() {
                let dot: i64 = c.iter().zip(&x).map(|(row, &w)| w as i64 * row[t]).sum();
                assert_eq!(dot, 0);
            }
        }
    }

    #[test]
    fn source_net_has_no_p_invariant() {
        // A pure source grows P unboundedly — no conservation.
        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.exponential("t", 1.0);
        b.output_arc(t, p, 1);
        let net = b.build().unwrap();
        assert!(p_semiflows(&net).unwrap().is_empty());
        // But firing t is not a T-invariant either (it changes the marking).
        assert!(t_semiflows(&net).unwrap().is_empty());
    }

    #[test]
    fn weighted_invariant() {
        // t consumes 2×A and produces 1×B; 1·A? No: invariant is A + 2B.
        let mut b = NetBuilder::new();
        let a = b.place("A", 4);
        let bb = b.place("B", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(a, t, 2);
        b.output_arc(t, bb, 1);
        let t2 = b.exponential("t2", 1.0);
        b.input_arc(bb, t2, 1);
        b.output_arc(t2, a, 2);
        let net = b.build().unwrap();
        let inv = p_semiflows(&net).unwrap();
        assert_eq!(inv, vec![vec![1, 2]], "A + 2B conserved");
    }

    #[test]
    fn two_independent_cycles_two_invariants() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let q0 = b.place("Q0", 1);
        let q1 = b.place("Q1", 0);
        for (x, y, n1, n2) in [(p0, p1, "a", "b"), (q0, q1, "c", "d")] {
            let t1 = b.exponential(n1, 1.0);
            b.input_arc(x, t1, 1);
            b.output_arc(t1, y, 1);
            let t2 = b.exponential(n2, 1.0);
            b.input_arc(y, t2, 1);
            b.output_arc(t2, x, 1);
        }
        let net = b.build().unwrap();
        let mut inv = p_semiflows(&net).unwrap();
        inv.sort();
        assert_eq!(inv, vec![vec![0, 0, 1, 1], vec![1, 1, 0, 0]]);
    }

    #[test]
    fn invariants_hold_along_simulation() {
        use crate::sim::{simulate, SimConfig};
        use wsnem_stats::rng::Xoshiro256PlusPlus;
        let net = cycle_net();
        let invariants = p_semiflows(&net).unwrap();
        let m0 = net.initial_marking();
        let expected: Vec<u64> = invariants.iter().map(|x| m0.weighted_sum(x)).collect();
        let mut rng = Xoshiro256PlusPlus::new(5);
        let out = simulate(&net, &SimConfig::for_horizon(100.0), &[], &mut rng).unwrap();
        for (x, e) in invariants.iter().zip(expected) {
            assert_eq!(out.final_marking.weighted_sum(x), e);
        }
    }
}
