//! Structural and numerical net analysis.
//!
//! * [`invariants`] — incidence matrix and P/T-semiflows via the Farkas
//!   algorithm. The paper's Fig. 3 net has two 1-token P-invariants
//!   ({StandBy, PowerUp, CpuOn} and {Idle, Active}); the engine's state
//!   classification rests on them, and tests assert them mechanically.
//! * [`reachability`] — bounded breadth-first exploration of the marking
//!   graph with tangible/vanishing classification.
//! * [`dead`] — dead-transition detection, both structural (marking-closure
//!   fixpoint, budget-independent) and behavioral (never fires on a complete
//!   reachability graph).
//! * [`siphons`] — siphon/trap classification and the deadlock witness:
//!   the empty siphon that starves a dead marking, or the inhibitor arcs
//!   that freeze it.
//! * [`tangible`] — vanishing elimination: for nets whose timed transitions
//!   are all exponential, fold immediate firings into branching
//!   probabilities and export the tangible CTMC (solved by `wsnem-markov`) —
//!   the "analytical" evaluation path TimeNET offers next to simulation.

pub mod dead;
pub mod invariants;
pub mod reachability;
pub mod siphons;
pub mod structural;
pub mod tangible;

pub use dead::{dead_transitions, structurally_dead_transitions};
pub use invariants::{incidence_matrix, p_semiflows, t_semiflows};
pub use reachability::{explore, ReachOptions, ReachabilityGraph};
pub use siphons::{
    explain_dead_marking, is_siphon, is_trap, maximal_siphon_within, DeadlockExplanation,
};
pub use structural::{
    conflict_sets, is_free_choice, is_marked_graph, is_state_machine, isolated_places,
    sink_transitions, source_transitions,
};
pub use tangible::{tangible_chain, TangibleChain};
