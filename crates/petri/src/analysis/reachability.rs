//! Bounded reachability exploration.

use std::collections::HashMap;

use crate::error::PetriError;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId, TransitionKind};

/// Budget limits for exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachOptions {
    /// Abort after this many distinct markings.
    pub max_markings: usize,
    /// Per-place token bound; exceeding it reports the net as (possibly)
    /// unbounded.
    pub max_tokens: u32,
}

impl Default for ReachOptions {
    fn default() -> Self {
        Self {
            max_markings: 100_000,
            max_tokens: 4096,
        }
    }
}

/// The reachability graph.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    /// Distinct reachable markings (index 0 = initial).
    pub markings: Vec<Marking>,
    /// Edges `(from, transition, to)` over marking indices.
    pub edges: Vec<(u32, u32, u32)>,
    /// Whether each marking is vanishing (an immediate transition enabled).
    pub vanishing: Vec<bool>,
}

impl ReachabilityGraph {
    /// Number of markings.
    pub fn len(&self) -> usize {
        self.markings.len()
    }

    /// True when the graph is empty (cannot happen post-exploration).
    pub fn is_empty(&self) -> bool {
        self.markings.is_empty()
    }

    /// Number of tangible markings.
    pub fn n_tangible(&self) -> usize {
        self.vanishing.iter().filter(|&&v| !v).count()
    }

    /// The maximum token count any place reaches (the net's bound).
    pub fn max_tokens_seen(&self) -> u32 {
        self.markings
            .iter()
            .flat_map(|m| m.as_slice().iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// True when no reachable marking enables any transition it could fire
    /// (deadlock exists somewhere).
    pub fn has_deadlock(&self, net: &PetriNet) -> bool {
        self.markings
            .iter()
            .any(|m| net.enabled_transitions(m).is_empty())
    }
}

/// Transitions fireable from a marking under GSPN semantics: if any
/// immediate is enabled, only the maximal-priority enabled immediates fire;
/// otherwise all enabled timed transitions do.
pub(crate) fn fireable(net: &PetriNet, m: &Marking) -> Vec<TransitionId> {
    let mut best_priority = 0u8;
    let mut immediates: Vec<TransitionId> = Vec::new();
    for t in net.transitions() {
        if let TransitionKind::Immediate { priority, .. } = net.kind(t) {
            if net.is_enabled(m, t) {
                if immediates.is_empty() || priority > best_priority {
                    immediates.clear();
                    immediates.push(t);
                    best_priority = priority;
                } else if priority == best_priority {
                    immediates.push(t);
                }
            }
        }
    }
    if !immediates.is_empty() {
        return immediates;
    }
    net.transitions()
        .filter(|&t| !net.kind(t).is_immediate() && net.is_enabled(m, t))
        .collect()
}

/// Whether a marking is vanishing (some immediate transition enabled).
pub(crate) fn is_vanishing(net: &PetriNet, m: &Marking) -> bool {
    net.transitions()
        .any(|t| net.kind(t).is_immediate() && net.is_enabled(m, t))
}

/// Breadth-first exploration from the initial marking.
pub fn explore(net: &PetriNet, opts: ReachOptions) -> Result<ReachabilityGraph, PetriError> {
    let mut markings: Vec<Marking> = Vec::new();
    let mut index: HashMap<Marking, u32> = HashMap::new();
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    let mut vanishing: Vec<bool> = Vec::new();

    let intern = |m: Marking,
                  markings: &mut Vec<Marking>,
                  vanishing: &mut Vec<bool>,
                  index: &mut HashMap<Marking, u32>|
     -> Result<u32, PetriError> {
        if let Some(&i) = index.get(&m) {
            return Ok(i);
        }
        for p in net.places() {
            if m.tokens(p) > opts.max_tokens {
                return Err(PetriError::Unbounded {
                    place: net.place_name(p).to_owned(),
                    bound: opts.max_tokens,
                });
            }
        }
        if markings.len() >= opts.max_markings {
            return Err(PetriError::TooManyMarkings {
                limit: opts.max_markings,
            });
        }
        let i = markings.len() as u32;
        vanishing.push(is_vanishing(net, &m));
        index.insert(m.clone(), i);
        markings.push(m);
        Ok(i)
    };

    let initial = net.initial_marking();
    intern(initial, &mut markings, &mut vanishing, &mut index)?;
    let mut frontier = 0usize;
    while frontier < markings.len() {
        let m = markings[frontier].clone();
        for t in fireable(net, &m) {
            let next = net.fire(&m, t);
            let j = intern(next, &mut markings, &mut vanishing, &mut index)?;
            edges.push((frontier as u32, t.index() as u32, j));
        }
        frontier += 1;
    }
    Ok(ReachabilityGraph {
        markings,
        edges,
        vanishing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    #[test]
    fn bounded_cycle_graph() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t01 = b.exponential("t01", 1.0);
        let t10 = b.exponential("t10", 1.0);
        b.input_arc(p0, t01, 1);
        b.output_arc(t01, p1, 1);
        b.input_arc(p1, t10, 1);
        b.output_arc(t10, p0, 1);
        let net = b.build().unwrap();
        let g = explore(&net, ReachOptions::default()).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.edges.len(), 2);
        assert_eq!(g.n_tangible(), 2);
        assert!(!g.has_deadlock(&net));
        assert_eq!(g.max_tokens_seen(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn mm1k_state_count() {
        // Queue bounded by inhibitor at K=4 → 5 markings (0..=4 tokens).
        let mut b = NetBuilder::new();
        let q = b.place("Queue", 0);
        let arrive = b.exponential("arrive", 1.0);
        b.output_arc(arrive, q, 1);
        b.inhibitor_arc(q, arrive, 4);
        let serve = b.exponential("serve", 2.0);
        b.input_arc(q, serve, 1);
        let net = b.build().unwrap();
        let g = explore(&net, ReachOptions::default()).unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.max_tokens_seen(), 4);
    }

    #[test]
    fn unbounded_source_detected() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.exponential("t", 1.0);
        b.output_arc(t, p, 1);
        let net = b.build().unwrap();
        let err = explore(
            &net,
            ReachOptions {
                max_markings: 1_000_000,
                max_tokens: 64,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PetriError::Unbounded { .. }));
    }

    #[test]
    fn marking_budget_respected() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.exponential("t", 1.0);
        b.output_arc(t, p, 1);
        let net = b.build().unwrap();
        let err = explore(
            &net,
            ReachOptions {
                max_markings: 10,
                max_tokens: 1_000_000,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PetriError::TooManyMarkings { .. }));
    }

    #[test]
    fn vanishing_classification_and_priority() {
        // src(exp) -> Wait; immediate moves Wait -> Done. Marking with a
        // token in Wait is vanishing.
        let mut b = NetBuilder::new();
        let wait = b.place("Wait", 0);
        let done = b.place("Done", 0);
        let src = b.exponential("src", 1.0);
        b.output_arc(src, wait, 1);
        b.inhibitor_arc(done, src, 3);
        let im = b.immediate("im", 1, 1.0);
        b.input_arc(wait, im, 1);
        b.output_arc(im, done, 1);
        let net = b.build().unwrap();
        let g = explore(&net, ReachOptions::default()).unwrap();
        let n_vanishing = g.vanishing.iter().filter(|&&v| v).count();
        assert!(n_vanishing >= 1);
        assert!(g.n_tangible() >= 2);
        // From a vanishing marking only the immediate fires.
        for (i, m) in g.markings.iter().enumerate() {
            if g.vanishing[i] {
                let f = fireable(&net, m);
                assert!(f.iter().all(|&t| net.kind(t).is_immediate()));
            }
        }
    }

    #[test]
    fn deadlock_detected() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(p0, t, 1);
        b.output_arc(t, p1, 1);
        let net = b.build().unwrap();
        let g = explore(&net, ReachOptions::default()).unwrap();
        assert!(g.has_deadlock(&net), "final marking enables nothing");
    }
}
