//! A library of classic nets used by tests, examples and benchmarks.

use crate::error::PetriError;
use crate::net::{NetBuilder, PetriNet, PlaceId};

/// An unbounded M/M/1 queue: `arrive` (exp λ, source) feeds `Queue`;
/// `serve` (exp μ) drains it. Returns the net and the queue place.
pub fn mm1_net(lambda: f64, mu: f64) -> Result<(PetriNet, PlaceId), PetriError> {
    let mut b = NetBuilder::new();
    let q = b.place("Queue", 0);
    let arrive = b.exponential("arrive", lambda);
    b.output_arc(arrive, q, 1);
    let serve = b.exponential("serve", mu);
    b.input_arc(q, serve, 1);
    Ok((b.build()?, q))
}

/// An M/M/1/K queue: as [`mm1_net`] plus an inhibitor that blocks arrivals
/// at `k` jobs.
pub fn mm1k_net(lambda: f64, mu: f64, k: u32) -> Result<(PetriNet, PlaceId), PetriError> {
    let mut b = NetBuilder::new();
    let q = b.place("Queue", 0);
    let arrive = b.exponential("arrive", lambda);
    b.output_arc(arrive, q, 1);
    b.inhibitor_arc(q, arrive, k);
    let serve = b.exponential("serve", mu);
    b.input_arc(q, serve, 1);
    Ok((b.build()?, q))
}

/// A bounded producer–consumer: `produce` (exp) fills `Buffer` while
/// `FreeSlots` last; `consume` (exp) drains it and returns the slot.
/// Returns `(net, buffer, free_slots)`.
pub fn producer_consumer_net(
    capacity: u32,
    produce_rate: f64,
    consume_rate: f64,
) -> Result<(PetriNet, PlaceId, PlaceId), PetriError> {
    let mut b = NetBuilder::new();
    let buffer = b.place("Buffer", 0);
    let free = b.place("FreeSlots", capacity);
    let produce = b.exponential("produce", produce_rate);
    b.input_arc(free, produce, 1);
    b.output_arc(produce, buffer, 1);
    let consume = b.exponential("consume", consume_rate);
    b.input_arc(buffer, consume, 1);
    b.output_arc(consume, free, 1);
    Ok((b.build()?, buffer, free))
}

/// A fork–join: `fork` (immediate) splits a token into `n` branches, each
/// completing after an exponential delay; `join` (immediate) requires all
/// branches done and restarts the cycle. Returns `(net, done_places)`.
pub fn fork_join_net(n: u32, branch_rate: f64) -> Result<(PetriNet, Vec<PlaceId>), PetriError> {
    assert!(n >= 1, "need at least one branch");
    let mut b = NetBuilder::new();
    let start = b.place("Start", 1);
    let fork = b.immediate("fork", 1, 1.0);
    b.input_arc(start, fork, 1);
    let join = b.immediate("join", 1, 1.0);
    b.output_arc(join, start, 1);
    let mut done_places = Vec::new();
    for i in 0..n {
        let work = b.place(format!("Work{i}"), 0);
        let done = b.place(format!("Done{i}"), 0);
        b.output_arc(fork, work, 1);
        let run = b.exponential(format!("run{i}"), branch_rate);
        b.input_arc(work, run, 1);
        b.output_arc(run, done, 1);
        b.input_arc(done, join, 1);
        done_places.push(done);
    }
    Ok((b.build()?, done_places))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{explore, p_semiflows, tangible_chain, ReachOptions};
    use crate::sim::{simulate, SimConfig};
    use wsnem_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn mm1_net_simulates_to_theory() {
        let (net, q) = mm1_net(1.0, 2.0).unwrap();
        let cfg = SimConfig {
            horizon: 60_000.0,
            warmup: 1000.0,
            ..SimConfig::default()
        };
        let mut rng = Xoshiro256PlusPlus::new(3);
        let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
        assert!((out.place_means[q.index()] - 1.0).abs() < 0.08);
    }

    #[test]
    fn mm1k_exact_blocking() {
        let (net, q) = mm1k_net(2.0, 1.0, 3).unwrap();
        let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
        let pi = chain.steady_state().unwrap();
        let closed = wsnem_markov::mm1k(2.0, 1.0, 3).unwrap();
        let block: f64 = chain
            .markings
            .iter()
            .zip(&pi)
            .filter(|(m, _)| m.tokens(q) == 3)
            .map(|(_, p)| p)
            .sum();
        assert!((block - closed.blocking_probability()).abs() < 1e-9);
    }

    #[test]
    fn producer_consumer_conservation() {
        let (net, buffer, free) = producer_consumer_net(5, 2.0, 3.0).unwrap();
        // Buffer + FreeSlots = capacity is a P-invariant.
        let inv = p_semiflows(&net).unwrap();
        assert!(inv
            .iter()
            .any(|x| { x[buffer.index()] == 1 && x[free.index()] == 1 }));
        let g = explore(&net, ReachOptions::default()).unwrap();
        assert_eq!(g.len(), 6, "markings 0..=5 buffered");
        // CTMC equals M/M/1/K=5 with λ=2, μ=3.
        let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
        let pi = chain.steady_state().unwrap();
        let l = chain.expected_tokens(&pi, buffer);
        let closed = wsnem_markov::mm1k(2.0, 3.0, 5).unwrap();
        assert!((l - closed.mean_jobs()).abs() < 1e-9);
    }

    #[test]
    fn fork_join_cycles() {
        let (net, done) = fork_join_net(3, 4.0).unwrap();
        let cfg = SimConfig::for_horizon(2000.0);
        let mut rng = Xoshiro256PlusPlus::new(9);
        let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
        // The join fired many times (cycle completes).
        let join_idx = net.find_transition("join").unwrap().index();
        assert!(out.firings[join_idx] > 100);
        // No tokens stuck: each done place holds < 1 token on average.
        for d in done {
            assert!(out.place_means[d.index()] < 1.0);
        }
        // All-branch conservation: each branch cycle is a P-invariant of 1.
        let inv = p_semiflows(&net).unwrap();
        assert!(!inv.is_empty());
    }

    #[test]
    fn mm1_net_unbounded_for_reachability() {
        let (net, _) = mm1_net(1.0, 2.0).unwrap();
        let err = explore(
            &net,
            ReachOptions {
                max_markings: 1_000_000,
                max_tokens: 32,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PetriError::Unbounded { .. }));
    }
}
