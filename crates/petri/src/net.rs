//! Net structure: places, transitions, arcs, builder and serializable spec.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use wsnem_stats::dist::Dist;

use crate::error::PetriError;
use crate::marking::Marking;

/// Identifier of a place (index into the net's place table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) u32);

impl PlaceId {
    /// Index into per-place vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a transition (index into the net's transition table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub(crate) u32);

impl TransitionId {
    /// Index into per-transition vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What happens to a timed transition's sampled firing time when the
/// transition is disabled before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum TimedPolicy {
    /// Race with resampling (a.k.a. *enabling memory*): the clock is
    /// discarded on disabling and freshly sampled on the next enabling.
    /// This is the TimeNET default and what the paper's Power-Down-Threshold
    /// timer needs (arrivals reset the countdown).
    #[default]
    RaceResample,
    /// Age memory: the remaining time is frozen while disabled and resumes
    /// on re-enabling (pre-emptive resume semantics).
    AgeMemory,
}

/// Kind and parameters of a transition.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum TransitionKind {
    /// Fires in zero time once enabled. Among simultaneously enabled
    /// immediates, the highest `priority` fires first; ties are resolved
    /// randomly proportional to `weight`.
    Immediate {
        /// Priority (higher fires first).
        priority: u8,
        /// Conflict-resolution weight (> 0).
        weight: f64,
    },
    /// Fires after a random (or constant) delay drawn from `dist`.
    Timed {
        /// Firing-delay distribution.
        dist: Dist,
        /// Clock behaviour on disabling.
        policy: TimedPolicy,
    },
}

impl TransitionKind {
    /// Immediate transition with priority and weight 1.
    pub fn immediate(priority: u8) -> Self {
        TransitionKind::Immediate {
            priority,
            weight: 1.0,
        }
    }

    /// Exponentially-timed transition (race/enabling-memory policy).
    pub fn exponential(rate: f64) -> Self {
        TransitionKind::Timed {
            dist: Dist::Exponential { rate },
            policy: TimedPolicy::RaceResample,
        }
    }

    /// Deterministically-timed transition (race/enabling-memory policy).
    pub fn deterministic(delay: f64) -> Self {
        TransitionKind::Timed {
            dist: Dist::Deterministic(delay),
            policy: TimedPolicy::RaceResample,
        }
    }

    /// Generally-timed transition (race/enabling-memory policy).
    pub fn timed(dist: Dist) -> Self {
        TransitionKind::Timed {
            dist,
            policy: TimedPolicy::RaceResample,
        }
    }

    /// True for immediate transitions.
    pub fn is_immediate(&self) -> bool {
        matches!(self, TransitionKind::Immediate { .. })
    }
}

/// Arc sets of one transition (compact adjacency).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct TransitionArcs {
    /// `(place, multiplicity)` consumed on firing; all must be marked.
    pub inputs: Vec<(u32, u32)>,
    /// `(place, multiplicity)` produced on firing.
    pub outputs: Vec<(u32, u32)>,
    /// `(place, threshold)`: transition disabled while `m(place) >= threshold`.
    pub inhibitors: Vec<(u32, u32)>,
}

/// One enabling condition of a transition, attached to the place it reads.
///
/// A transition is enabled iff every one of its conditions is satisfied:
/// input arcs require `m(place) >= bound`, inhibitor arcs require
/// `m(place) < bound`. The simulator keeps a per-transition count of
/// *unsatisfied* conditions and updates it incrementally from marking
/// deltas, so enabling flips are detected in O(conditions touching the
/// changed places) instead of re-walking every arc of every neighbour.
///
/// Packed to 8 bytes for cache density on the delta hot path: the high bit
/// of `bound_inh` marks an inhibitor, the low 31 bits hold the bound.
/// Either kind flips exactly when `tokens >= bound` changes truth value
/// (the inhibitor bit only decides which side is the satisfied one), so
/// delta processing is branch-free on the arc kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EnablingCond {
    /// Transition whose enabling this condition gates.
    pub trans: u32,
    bound_inh: u32,
}

const INHIBITOR_BIT: u32 = 1 << 31;

impl EnablingCond {
    #[inline]
    pub fn new(trans: u32, bound: u32, inhibitor: bool) -> Self {
        debug_assert!(bound < INHIBITOR_BIT, "bound exceeds 2^31 - 1");
        Self {
            trans,
            bound_inh: bound | if inhibitor { INHIBITOR_BIT } else { 0 },
        }
    }

    /// Input multiplicity or inhibitor threshold.
    #[inline]
    pub fn bound(&self) -> u32 {
        self.bound_inh & !INHIBITOR_BIT
    }

    /// True for inhibitor conditions (`m < bound` satisfies).
    #[inline]
    pub fn inhibitor(&self) -> bool {
        self.bound_inh & INHIBITOR_BIT != 0
    }

    /// Whether `tokens` satisfies this condition.
    #[inline]
    pub fn satisfied(&self, tokens: u32) -> bool {
        (tokens >= self.bound()) != self.inhibitor()
    }
}

/// Incremental net constructor.
#[derive(Debug, Default)]
pub struct NetBuilder {
    place_names: Vec<String>,
    initial: Vec<u32>,
    trans_names: Vec<String>,
    kinds: Vec<TransitionKind>,
    arcs: Vec<TransitionArcs>,
}

impl NetBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a place with an initial token count.
    pub fn place(&mut self, name: impl Into<String>, initial_tokens: u32) -> PlaceId {
        self.place_names.push(name.into());
        self.initial.push(initial_tokens);
        PlaceId((self.place_names.len() - 1) as u32)
    }

    /// Add a transition of the given kind.
    pub fn transition(&mut self, name: impl Into<String>, kind: TransitionKind) -> TransitionId {
        self.trans_names.push(name.into());
        self.kinds.push(kind);
        self.arcs.push(TransitionArcs::default());
        TransitionId((self.trans_names.len() - 1) as u32)
    }

    /// Shorthand: immediate transition with priority and weight.
    pub fn immediate(
        &mut self,
        name: impl Into<String>,
        priority: u8,
        weight: f64,
    ) -> TransitionId {
        self.transition(name, TransitionKind::Immediate { priority, weight })
    }

    /// Shorthand: exponential transition.
    pub fn exponential(&mut self, name: impl Into<String>, rate: f64) -> TransitionId {
        self.transition(name, TransitionKind::exponential(rate))
    }

    /// Shorthand: deterministic transition.
    pub fn deterministic(&mut self, name: impl Into<String>, delay: f64) -> TransitionId {
        self.transition(name, TransitionKind::deterministic(delay))
    }

    /// Input arc: firing `t` consumes `multiplicity` tokens from `p`.
    pub fn input_arc(&mut self, p: PlaceId, t: TransitionId, multiplicity: u32) -> &mut Self {
        self.arcs[t.index()].inputs.push((p.0, multiplicity));
        self
    }

    /// Output arc: firing `t` produces `multiplicity` tokens into `p`.
    pub fn output_arc(&mut self, t: TransitionId, p: PlaceId, multiplicity: u32) -> &mut Self {
        self.arcs[t.index()].outputs.push((p.0, multiplicity));
        self
    }

    /// Inhibitor arc: `t` is disabled while `m(p) >= threshold` (the "small
    /// circle" arcs of the paper's Fig. 3).
    pub fn inhibitor_arc(&mut self, p: PlaceId, t: TransitionId, threshold: u32) -> &mut Self {
        self.arcs[t.index()].inhibitors.push((p.0, threshold));
        self
    }

    /// Validate and freeze into a [`PetriNet`].
    pub fn build(self) -> Result<PetriNet, PetriError> {
        // Unique names.
        let mut seen = std::collections::HashSet::new();
        for n in self.place_names.iter().chain(&self.trans_names) {
            if !seen.insert(n.as_str()) {
                return Err(PetriError::DuplicateName(n.clone()));
            }
        }
        // Kinds and arcs.
        for (ti, kind) in self.kinds.iter().enumerate() {
            match kind {
                TransitionKind::Immediate { weight, .. } => {
                    if !(*weight > 0.0) || !weight.is_finite() {
                        return Err(PetriError::InvalidWeight {
                            transition: self.trans_names[ti].clone(),
                            weight: *weight,
                        });
                    }
                }
                TransitionKind::Timed { dist, .. } => dist.validate()?,
            }
            let arcs = &self.arcs[ti];
            for (kind_arcs, _is_inhib) in [
                (&arcs.inputs, false),
                (&arcs.outputs, false),
                (&arcs.inhibitors, true),
            ] {
                let mut places = std::collections::HashSet::new();
                for &(p, mult) in kind_arcs.iter() {
                    // Zero is meaningless; the top bit is reserved by the
                    // packed enabling-condition layout (`EnablingCond`),
                    // where it would silently flip the arc kind.
                    if mult == 0 || mult >= INHIBITOR_BIT {
                        return Err(PetriError::InvalidMultiplicity {
                            transition: self.trans_names[ti].clone(),
                            place: self.place_names[p as usize].clone(),
                        });
                    }
                    if !places.insert(p) {
                        return Err(PetriError::DuplicateArc {
                            transition: self.trans_names[ti].clone(),
                            place: self.place_names[p as usize].clone(),
                        });
                    }
                }
            }
        }

        // place -> transitions whose enabling depends on it.
        let mut affecting: Vec<Vec<u32>> = vec![Vec::new(); self.place_names.len()];
        for (ti, arcs) in self.arcs.iter().enumerate() {
            for &(p, _) in arcs.inputs.iter().chain(&arcs.inhibitors) {
                let list = &mut affecting[p as usize];
                if !list.contains(&(ti as u32)) {
                    list.push(ti as u32);
                }
            }
        }

        // Highest priority first (stable, so equal priorities keep index
        // order and weight-tie RNG draws are unchanged): the simulator's
        // vanishing resolution can then stop scanning at the end of the
        // first priority group containing an enabled transition.
        let mut immediates: Vec<u32> = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_immediate())
            .map(|(i, _)| i as u32)
            .collect();
        immediates.sort_by_key(|&t| {
            std::cmp::Reverse(match self.kinds[t as usize] {
                TransitionKind::Immediate { priority, .. } => priority,
                TransitionKind::Timed { .. } => unreachable!("filtered to immediates"),
            })
        });
        let timed: Vec<u32> = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| !k.is_immediate())
            .map(|(i, _)| i as u32)
            .collect();

        // CSR of enabling conditions grouped by place: `cond_start[p] ..
        // cond_start[p + 1]` indexes the conditions reading place `p`.
        // Two passes: count per place, then fill at the running offsets.
        let n_places = self.place_names.len();
        let mut cond_start = vec![0u32; n_places + 1];
        for arcs in &self.arcs {
            for &(p, _) in arcs.inputs.iter().chain(&arcs.inhibitors) {
                cond_start[p as usize + 1] += 1;
            }
        }
        for p in 0..n_places {
            cond_start[p + 1] += cond_start[p];
        }
        let mut fill = cond_start.clone();
        let mut conds = vec![EnablingCond::new(0, 0, false); cond_start[n_places] as usize];
        for (ti, arcs) in self.arcs.iter().enumerate() {
            for &(p, bound) in &arcs.inputs {
                conds[fill[p as usize] as usize] = EnablingCond::new(ti as u32, bound, false);
                fill[p as usize] += 1;
            }
            for &(p, bound) in &arcs.inhibitors {
                conds[fill[p as usize] as usize] = EnablingCond::new(ti as u32, bound, true);
                fill[p as usize] += 1;
            }
        }

        // Flat immediate priority/weight side tables (timed slots unused):
        // the vanishing loop reads these instead of matching `kind()` per
        // candidate.
        let imm_priority: Vec<u8> = self
            .kinds
            .iter()
            .map(|k| match k {
                TransitionKind::Immediate { priority, .. } => *priority,
                TransitionKind::Timed { .. } => 0,
            })
            .collect();
        let imm_weight: Vec<f64> = self
            .kinds
            .iter()
            .map(|k| match k {
                TransitionKind::Immediate { weight, .. } => *weight,
                TransitionKind::Timed { .. } => 0.0,
            })
            .collect();

        Ok(PetriNet {
            place_names: self.place_names,
            initial: self.initial,
            trans_names: self.trans_names,
            kinds: self.kinds,
            arcs: self.arcs,
            affecting,
            immediates,
            timed,
            cond_start,
            conds,
            imm_priority,
            imm_weight,
        })
    }
}

/// An immutable, validated Petri net.
#[derive(Debug, Clone, PartialEq)]
pub struct PetriNet {
    place_names: Vec<String>,
    initial: Vec<u32>,
    trans_names: Vec<String>,
    kinds: Vec<TransitionKind>,
    arcs: Vec<TransitionArcs>,
    /// place index → transitions having it as input or inhibitor.
    affecting: Vec<Vec<u32>>,
    /// Indices of immediate transitions.
    immediates: Vec<u32>,
    /// Indices of timed transitions.
    timed: Vec<u32>,
    /// CSR offsets into `conds`, one run per place (len `n_places + 1`).
    cond_start: Vec<u32>,
    /// Enabling conditions grouped by place (see [`EnablingCond`]).
    conds: Vec<EnablingCond>,
    /// Per-transition immediate priority (0 for timed transitions).
    imm_priority: Vec<u8>,
    /// Per-transition immediate weight (0.0 for timed transitions).
    imm_weight: Vec<f64>,
}

impl PetriNet {
    /// Number of places.
    pub fn n_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn n_transitions(&self) -> usize {
        self.trans_names.len()
    }

    /// All place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.place_names.len() as u32).map(PlaceId)
    }

    /// All transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.trans_names.len() as u32).map(TransitionId)
    }

    /// Name of a place.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.index()]
    }

    /// Name of a transition.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.trans_names[t.index()]
    }

    /// Kind of a transition.
    pub fn kind(&self, t: TransitionId) -> TransitionKind {
        self.kinds[t.index()]
    }

    /// Look a place up by name.
    pub fn find_place(&self, name: &str) -> Option<PlaceId> {
        self.place_names
            .iter()
            .position(|n| n == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Look a transition up by name.
    pub fn find_transition(&self, name: &str) -> Option<TransitionId> {
        self.trans_names
            .iter()
            .position(|n| n == name)
            .map(|i| TransitionId(i as u32))
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        Marking::new(self.initial.clone())
    }

    /// Input arcs of `t` as `(place, multiplicity)`.
    pub fn inputs(&self, t: TransitionId) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.arcs[t.index()]
            .inputs
            .iter()
            .map(|&(p, m)| (PlaceId(p), m))
    }

    /// Output arcs of `t` as `(place, multiplicity)`.
    pub fn outputs(&self, t: TransitionId) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.arcs[t.index()]
            .outputs
            .iter()
            .map(|&(p, m)| (PlaceId(p), m))
    }

    /// Inhibitor arcs of `t` as `(place, threshold)`.
    pub fn inhibitors(&self, t: TransitionId) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.arcs[t.index()]
            .inhibitors
            .iter()
            .map(|&(p, m)| (PlaceId(p), m))
    }

    /// Transitions whose enabling can change when `p`'s marking changes.
    pub(crate) fn affected_by(&self, p: u32) -> &[u32] {
        &self.affecting[p as usize]
    }

    /// Indices of immediate transitions, highest priority first (equal
    /// priorities in ascending index order).
    pub(crate) fn immediate_indices(&self) -> &[u32] {
        &self.immediates
    }

    /// Indices of timed transitions (ascending).
    pub(crate) fn timed_indices(&self) -> &[u32] {
        &self.timed
    }

    /// Enabling conditions reading place `p` (CSR slice).
    #[inline]
    pub(crate) fn conds_of(&self, p: u32) -> &[EnablingCond] {
        &self.conds[self.cond_start[p as usize] as usize..self.cond_start[p as usize + 1] as usize]
    }

    /// Count each transition's unsatisfied enabling conditions in `marking`
    /// into `unsat` (one slot per transition, zeroed first). A transition is
    /// enabled iff its count is zero — the simulator seeds its incremental
    /// counters with this and then maintains them from marking deltas.
    pub(crate) fn count_unsat(&self, marking: &Marking, unsat: &mut [u32]) {
        debug_assert_eq!(unsat.len(), self.n_transitions());
        unsat.iter_mut().for_each(|u| *u = 0);
        for p in 0..self.place_names.len() {
            let tokens = marking.0[p];
            for c in self.conds_of(p as u32) {
                if !c.satisfied(tokens) {
                    unsat[c.trans as usize] += 1;
                }
            }
        }
    }

    /// Immediate priority of transition `t` (side table; 0 for timed).
    #[inline]
    pub(crate) fn imm_priority(&self, t: u32) -> u8 {
        self.imm_priority[t as usize]
    }

    /// Immediate weight of transition `t` (side table; 0.0 for timed).
    #[inline]
    pub(crate) fn imm_weight(&self, t: u32) -> f64 {
        self.imm_weight[t as usize]
    }

    /// Whether `t` is enabled in `marking` (inputs satisfied, no inhibitor
    /// tripped).
    pub fn is_enabled(&self, marking: &Marking, t: TransitionId) -> bool {
        let arcs = &self.arcs[t.index()];
        for &(p, mult) in &arcs.inputs {
            if marking.0[p as usize] < mult {
                return false;
            }
        }
        for &(p, thresh) in &arcs.inhibitors {
            if marking.0[p as usize] >= thresh {
                return false;
            }
        }
        true
    }

    /// All transitions enabled in `marking`.
    pub fn enabled_transitions(&self, marking: &Marking) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.is_enabled(marking, t))
            .collect()
    }

    /// Fire `t` in `marking` (must be enabled), mutating it in place and
    /// recording changed place indices into `changed` (cleared first).
    pub(crate) fn fire_into(&self, marking: &mut Marking, t: u32, changed: &mut Vec<u32>) {
        changed.clear();
        let arcs = &self.arcs[t as usize];
        for &(p, mult) in &arcs.inputs {
            debug_assert!(marking.0[p as usize] >= mult, "firing disabled transition");
            marking.0[p as usize] -= mult;
            changed.push(p);
        }
        for &(p, mult) in &arcs.outputs {
            marking.0[p as usize] += mult;
            if !changed.contains(&p) {
                changed.push(p);
            }
        }
    }

    /// Raw input arcs of `t` as `(place, multiplicity)` (engine hot path).
    #[inline]
    pub(crate) fn input_arcs(&self, t: u32) -> &[(u32, u32)] {
        &self.arcs[t as usize].inputs
    }

    /// Raw output arcs of `t` as `(place, multiplicity)` (engine hot path).
    #[inline]
    pub(crate) fn output_arcs(&self, t: u32) -> &[(u32, u32)] {
        &self.arcs[t as usize].outputs
    }

    /// Fire `t` on a copy of `marking` and return the successor (must be
    /// enabled).
    pub fn fire(&self, marking: &Marking, t: TransitionId) -> Marking {
        let mut next = marking.clone();
        let mut scratch = Vec::new();
        self.fire_into(&mut next, t.0, &mut scratch);
        next
    }

    /// Serializable specification of this net.
    pub fn to_spec(&self) -> NetSpec {
        let mut arcs = Vec::new();
        for t in self.transitions() {
            for (p, m) in self.inputs(t) {
                arcs.push(ArcSpec {
                    kind: ArcKind::Input,
                    place: self.place_name(p).to_owned(),
                    transition: self.transition_name(t).to_owned(),
                    multiplicity: m,
                });
            }
            for (p, m) in self.outputs(t) {
                arcs.push(ArcSpec {
                    kind: ArcKind::Output,
                    place: self.place_name(p).to_owned(),
                    transition: self.transition_name(t).to_owned(),
                    multiplicity: m,
                });
            }
            for (p, m) in self.inhibitors(t) {
                arcs.push(ArcSpec {
                    kind: ArcKind::Inhibitor,
                    place: self.place_name(p).to_owned(),
                    transition: self.transition_name(t).to_owned(),
                    multiplicity: m,
                });
            }
        }
        NetSpec {
            places: self
                .places()
                .map(|p| PlaceSpec {
                    name: self.place_name(p).to_owned(),
                    initial: self.initial[p.index()],
                })
                .collect(),
            transitions: self
                .transitions()
                .map(|t| TransSpec {
                    name: self.transition_name(t).to_owned(),
                    kind: self.kind(t),
                })
                .collect(),
            arcs,
        }
    }
}

/// Arc direction/kind in a [`NetSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ArcKind {
    /// Place → transition, consumed on firing.
    Input,
    /// Transition → place, produced on firing.
    Output,
    /// Place —o transition, disables at or above the threshold.
    Inhibitor,
}

/// One place in a [`NetSpec`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PlaceSpec {
    /// Place name (unique).
    pub name: String,
    /// Initial token count.
    pub initial: u32,
}

/// One transition in a [`NetSpec`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TransSpec {
    /// Transition name (unique).
    pub name: String,
    /// Kind and parameters.
    pub kind: TransitionKind,
}

/// One arc in a [`NetSpec`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ArcSpec {
    /// Arc kind.
    pub kind: ArcKind,
    /// Place name.
    pub place: String,
    /// Transition name.
    pub transition: String,
    /// Multiplicity (inputs/outputs) or threshold (inhibitors).
    pub multiplicity: u32,
}

/// Serializable net description (names instead of indices) — the exchange
/// format for nets on disk.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NetSpec {
    /// Places.
    pub places: Vec<PlaceSpec>,
    /// Transitions.
    pub transitions: Vec<TransSpec>,
    /// Arcs.
    pub arcs: Vec<ArcSpec>,
}

impl NetSpec {
    /// Resolve names and build the net.
    pub fn build(&self) -> Result<PetriNet, PetriError> {
        let mut b = NetBuilder::new();
        for p in &self.places {
            b.place(p.name.clone(), p.initial);
        }
        for t in &self.transitions {
            b.transition(t.name.clone(), t.kind);
        }
        // Need id lookup before build(); replicate the index mapping.
        let place_of = |name: &str| -> Result<PlaceId, PetriError> {
            self.places
                .iter()
                .position(|p| p.name == name)
                .map(|i| PlaceId(i as u32))
                .ok_or_else(|| PetriError::UnknownName(name.to_owned()))
        };
        let trans_of = |name: &str| -> Result<TransitionId, PetriError> {
            self.transitions
                .iter()
                .position(|t| t.name == name)
                .map(|i| TransitionId(i as u32))
                .ok_or_else(|| PetriError::UnknownName(name.to_owned()))
        };
        for a in &self.arcs {
            let p = place_of(&a.place)?;
            let t = trans_of(&a.transition)?;
            match a.kind {
                ArcKind::Input => b.input_arc(p, t, a.multiplicity),
                ArcKind::Output => b.output_arc(t, p, a.multiplicity),
                ArcKind::Inhibitor => b.inhibitor_arc(p, t, a.multiplicity),
            };
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// P0 --(t: exp)-- P1 with an inhibitor from P1 (threshold 2).
    fn tiny() -> PetriNet {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t = b.exponential("t", 2.0);
        b.input_arc(p0, t, 1);
        b.output_arc(t, p1, 1);
        b.inhibitor_arc(p1, t, 2);
        b.build().unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let net = tiny();
        assert_eq!(net.n_places(), 2);
        assert_eq!(net.n_transitions(), 1);
        let p0 = net.find_place("P0").unwrap();
        let t = net.find_transition("t").unwrap();
        assert_eq!(net.place_name(p0), "P0");
        assert_eq!(net.transition_name(t), "t");
        assert!(net.find_place("nope").is_none());
        assert!(net.find_transition("nope").is_none());
        assert_eq!(net.inputs(t).collect::<Vec<_>>(), vec![(p0, 1)]);
        assert!(matches!(
            net.kind(t),
            TransitionKind::Timed {
                dist: Dist::Exponential { .. },
                ..
            }
        ));
    }

    #[test]
    fn enabling_and_firing() {
        let net = tiny();
        let t = net.find_transition("t").unwrap();
        let m0 = net.initial_marking();
        assert!(net.is_enabled(&m0, t));
        let m1 = net.fire(&m0, t);
        assert_eq!(m1.as_slice(), &[0, 1]);
        assert!(!net.is_enabled(&m1, t), "input empty");
        assert_eq!(net.enabled_transitions(&m0), vec![t]);
        assert!(net.enabled_transitions(&m1).is_empty());
    }

    #[test]
    fn inhibitor_disables() {
        let net = tiny();
        let t = net.find_transition("t").unwrap();
        let m = Marking::new(vec![5, 2]);
        assert!(!net.is_enabled(&m, t), "P1 at threshold trips inhibitor");
        let m = Marking::new(vec![5, 1]);
        assert!(net.is_enabled(&m, t));
    }

    #[test]
    fn source_transition_always_enabled() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.exponential("src", 1.0);
        b.output_arc(t, p, 1);
        let net = b.build().unwrap();
        let t = net.find_transition("src").unwrap();
        assert!(net.is_enabled(&net.initial_marking(), t));
    }

    #[test]
    fn multiplicity_arithmetic() {
        let mut b = NetBuilder::new();
        let p0 = b.place("in", 5);
        let p1 = b.place("out", 0);
        let t = b.immediate("t", 1, 1.0);
        b.input_arc(p0, t, 3);
        b.output_arc(t, p1, 2);
        let net = b.build().unwrap();
        let t = net.find_transition("t").unwrap();
        let m = net.fire(&net.initial_marking(), t);
        assert_eq!(m.as_slice(), &[2, 2]);
        // Needs 3 tokens: disabled at 2.
        assert!(!net.is_enabled(&m, t));
    }

    #[test]
    fn builder_rejects_duplicates_and_invalids() {
        let mut b = NetBuilder::new();
        b.place("X", 0);
        b.place("X", 0);
        assert!(matches!(b.build(), Err(PetriError::DuplicateName(_))));

        let mut b = NetBuilder::new();
        b.place("P", 0);
        b.transition("P", TransitionKind::immediate(1));
        assert!(matches!(b.build(), Err(PetriError::DuplicateName(_))));

        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.immediate("t", 1, 0.0);
        b.input_arc(p, t, 1);
        assert!(matches!(b.build(), Err(PetriError::InvalidWeight { .. })));

        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.immediate("t", 1, 1.0);
        b.input_arc(p, t, 0);
        assert!(matches!(
            b.build(),
            Err(PetriError::InvalidMultiplicity { .. })
        ));

        // The packed enabling-condition layout reserves the top bit, so
        // 2^31 and above must be rejected at build time (not silently
        // reinterpreted as an inhibitor in release builds).
        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.immediate("t", 1, 1.0);
        b.input_arc(p, t, 1 << 31);
        assert!(matches!(
            b.build(),
            Err(PetriError::InvalidMultiplicity { .. })
        ));
        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.immediate("t", 1, 1.0);
        b.inhibitor_arc(p, t, u32::MAX);
        assert!(matches!(
            b.build(),
            Err(PetriError::InvalidMultiplicity { .. })
        ));

        let mut b = NetBuilder::new();
        let p = b.place("P", 0);
        let t = b.immediate("t", 1, 1.0);
        b.input_arc(p, t, 1);
        b.input_arc(p, t, 1);
        assert!(matches!(b.build(), Err(PetriError::DuplicateArc { .. })));

        let mut b = NetBuilder::new();
        b.exponential("t", -1.0);
        assert!(matches!(b.build(), Err(PetriError::Stats(_))));
    }

    #[test]
    fn input_and_output_to_same_place_allowed() {
        // Self-loop place (read arc pattern): consume and reproduce.
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let t = b.exponential("t", 1.0);
        b.input_arc(p, t, 1);
        b.output_arc(t, p, 1);
        let net = b.build().unwrap();
        let t = net.find_transition("t").unwrap();
        let m = net.fire(&net.initial_marking(), t);
        assert_eq!(m.as_slice(), &[1]);
    }

    #[test]
    fn spec_round_trip() {
        let net = tiny();
        let spec = net.to_spec();
        let rebuilt = spec.build().unwrap();
        assert_eq!(net, rebuilt);
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: NetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.build().unwrap(), net);
    }

    #[test]
    fn spec_unknown_names_rejected() {
        let mut spec = tiny().to_spec();
        spec.arcs[0].place = "ghost".into();
        assert!(matches!(spec.build(), Err(PetriError::UnknownName(_))));
        let mut spec = tiny().to_spec();
        spec.arcs[0].transition = "ghost".into();
        assert!(matches!(spec.build(), Err(PetriError::UnknownName(_))));
    }

    #[test]
    fn enabling_conditions_csr_matches_is_enabled() {
        let net = tiny();
        // P0 carries t's input condition (bound 1), P1 its inhibitor
        // (bound 2).
        assert_eq!(net.conds_of(0), &[EnablingCond::new(0, 1, false)]);
        assert_eq!(net.conds_of(1), &[EnablingCond::new(0, 2, true)]);
        assert_eq!(net.conds_of(0)[0].bound(), 1);
        assert!(!net.conds_of(0)[0].inhibitor());
        assert_eq!(net.conds_of(1)[0].bound(), 2);
        assert!(net.conds_of(1)[0].inhibitor());
        let mut unsat = vec![0u32; net.n_transitions()];
        for m in [
            Marking::new(vec![1, 0]),
            Marking::new(vec![0, 1]),
            Marking::new(vec![5, 2]),
            Marking::new(vec![0, 3]),
        ] {
            net.count_unsat(&m, &mut unsat);
            let t = TransitionId(0);
            assert_eq!(unsat[0] == 0, net.is_enabled(&m, t), "marking {m:?}");
        }
    }

    #[test]
    fn immediate_side_tables() {
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let timed = b.exponential("timed", 1.0);
        b.input_arc(p, timed, 1);
        let imm = b.immediate("imm", 3, 2.5);
        b.input_arc(p, imm, 1);
        let net = b.build().unwrap();
        assert_eq!(net.imm_priority(imm.0), 3);
        assert_eq!(net.imm_weight(imm.0), 2.5);
        assert_eq!(net.imm_priority(timed.0), 0);
        assert_eq!(net.imm_weight(timed.0), 0.0);
    }

    #[test]
    fn raw_arc_slices_match_iterators() {
        let mut b = NetBuilder::new();
        let p0 = b.place("in", 5);
        let p1 = b.place("out", 2);
        let t = b.immediate("t", 1, 1.0);
        b.input_arc(p0, t, 3);
        b.output_arc(t, p0, 1);
        b.output_arc(t, p1, 2);
        let net = b.build().unwrap();
        assert_eq!(net.input_arcs(0), &[(0, 3)]);
        assert_eq!(net.output_arcs(0), &[(0, 1), (1, 2)]);
        assert_eq!(
            net.inputs(TransitionId(0))
                .map(|(p, m)| (p.0, m))
                .collect::<Vec<_>>(),
            net.input_arcs(0)
        );
    }

    #[test]
    fn affected_by_index() {
        let net = tiny();
        // P0 is input of t; P1 is inhibitor of t — both affect t.
        assert_eq!(net.affected_by(0), &[0]);
        assert_eq!(net.affected_by(1), &[0]);
        assert_eq!(net.immediate_indices(), &[] as &[u32]);
        assert_eq!(net.timed_indices(), &[0]);
    }
}
