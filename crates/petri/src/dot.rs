//! Graphviz DOT export — render a net the way the paper draws Fig. 1/Fig. 3
//! (circles for places, bars/boxes for transitions, dot-tipped inhibitor
//! arcs).

use crate::net::{PetriNet, TransitionKind};

/// Render the net as a Graphviz `digraph`.
///
/// * Places: circles, labeled `name (initial tokens)` when initially marked.
/// * Immediate transitions: thin filled bars with `prio`/`w` annotations.
/// * Timed transitions: open boxes labeled with their distribution.
/// * Inhibitor arcs: `odot` arrowheads, as in the paper's "small circles".
pub fn to_dot(net: &PetriNet) -> String {
    let mut out = String::from("digraph petri {\n  rankdir=LR;\n");
    for p in net.places() {
        let init = net.initial_marking().tokens(p);
        let label = if init > 0 {
            format!("{} ({init})", net.place_name(p))
        } else {
            net.place_name(p).to_owned()
        };
        out.push_str(&format!(
            "  P{} [shape=circle, label=\"{label}\"];\n",
            p.index()
        ));
    }
    for t in net.transitions() {
        let (shape, style, label) = match net.kind(t) {
            TransitionKind::Immediate { priority, weight } => (
                "box",
                "filled, fillcolor=black, fontcolor=white",
                format!("{} [prio {priority}, w {weight}]", net.transition_name(t)),
            ),
            TransitionKind::Timed { dist, .. } => (
                "box",
                "solid",
                format!("{} [{dist:?}]", net.transition_name(t)),
            ),
        };
        out.push_str(&format!(
            "  T{} [shape={shape}, style=\"{style}\", height=0.3, label=\"{label}\"];\n",
            t.index()
        ));
    }
    for t in net.transitions() {
        for (p, m) in net.inputs(t) {
            let lbl = if m > 1 {
                format!(" [label=\"{m}\"]")
            } else {
                String::new()
            };
            out.push_str(&format!("  P{} -> T{}{lbl};\n", p.index(), t.index()));
        }
        for (p, m) in net.outputs(t) {
            let lbl = if m > 1 {
                format!(" [label=\"{m}\"]")
            } else {
                String::new()
            };
            out.push_str(&format!("  T{} -> P{}{lbl};\n", t.index(), p.index()));
        }
        for (p, m) in net.inhibitors(t) {
            let lbl = if m > 1 {
                format!(", label=\"{m}\"")
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  P{} -> T{} [arrowhead=odot{lbl}];\n",
                p.index(),
                t.index()
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    #[test]
    fn dot_contains_all_elements() {
        let mut b = NetBuilder::new();
        let p0 = b.place("Start", 2);
        let p1 = b.place("Done", 0);
        let t = b.exponential("go", 1.5);
        b.input_arc(p0, t, 3);
        b.output_arc(t, p1, 1);
        b.inhibitor_arc(p1, t, 4);
        let im = b.immediate("pick", 2, 0.5);
        b.input_arc(p1, im, 1);
        let net = b.build().unwrap();

        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph petri {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("Start (2)"), "initial marking rendered");
        assert!(dot.contains("\"Done\""), "unmarked place plain");
        assert!(dot.contains("prio 2, w 0.5"), "immediate annotation");
        assert!(dot.contains("Exponential"), "timed annotation");
        assert!(dot.contains("label=\"3\""), "multiplicity label");
        assert!(dot.contains("arrowhead=odot"), "inhibitor arc");
        assert!(dot.contains("label=\"4\""), "inhibitor threshold label");
    }

    #[test]
    fn paper_net_renders() {
        // The Fig. 3 net renders without panicking and names every node.
        let mut b = NetBuilder::new();
        let p = b.place("P", 1);
        let t = b.deterministic("d", 0.5);
        b.input_arc(p, t, 1);
        let net = b.build().unwrap();
        let dot = to_dot(&net);
        let n_edges = dot.matches(" -> ").count();
        assert_eq!(n_edges, 1);
    }
}
