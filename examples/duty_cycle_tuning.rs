//! Domain scenario 1 — picking the Power Down Threshold.
//!
//! The question behind the paper's Fig. 5: given a workload, what idle
//! threshold `T` minimizes energy? For a PXA271 with a 1 ms power-up delay
//! the answer is "power down almost immediately" — but make waking
//! expensive (D = 2 s) and the optimum flips to "stay awake".
//!
//! Run with: `cargo run --release --example duty_cycle_tuning`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::CpuModelParams;
use wsnem::energy::PowerProfile;
use wsnem::wsn::tuning::optimize_threshold;

fn main() {
    let profile = PowerProfile::pxa271();
    let candidates = [0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0];

    // Case 1: the paper's processor — waking is essentially free (1 ms).
    let cheap_wake = CpuModelParams::paper_defaults().with_power_up_delay(0.001);
    let choice = optimize_threshold(cheap_wake, &profile, &candidates).expect("optimization runs");
    println!("Cheap wake-up (D = 1 ms):");
    for (t, p) in choice.candidates.iter().zip(&choice.mean_power_mw) {
        let marker = if *t == choice.best_threshold() {
            "  <== best"
        } else {
            ""
        };
        println!("  T = {t:>5.2} s  ->  {p:>7.3} mW{marker}");
    }
    println!(
        "  Verdict: power down after {:.2} s of idling.\n",
        choice.best_threshold()
    );

    // Case 2: an expensive wake-up (D = 2 s) — e.g. reloading state from
    // flash. Uses the Petri-net backend automatically, because the paper
    // showed the Markov approximation cannot be trusted at large D.
    let costly_wake = CpuModelParams::paper_defaults()
        .with_power_up_delay(2.0)
        .with_replications(12)
        .with_horizon(6000.0)
        .with_warmup(300.0);
    let choice = optimize_threshold(costly_wake, &profile, &candidates).expect("optimization runs");
    println!("Costly wake-up (D = 2 s):");
    for (t, p) in choice.candidates.iter().zip(&choice.mean_power_mw) {
        let marker = if *t == choice.best_threshold() {
            "  <== best"
        } else {
            ""
        };
        println!("  T = {t:>5.2} s  ->  {p:>7.3} mW{marker}");
    }
    println!(
        "  Verdict: keep the CPU awake ~{:.2} s before sleeping — power-cycling\n  burns more in the 192 mW power-up state than idling saves.",
        choice.best_threshold()
    );
}
