//! Quickstart: evaluate the same processor with all three models and turn
//! the result into energy and battery lifetime.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::{CpuModel, CpuModelParams, DesCpuModel, MarkovCpuModel, PetriCpuModel};
use wsnem::energy::{Battery, PowerProfile};

fn main() {
    // The paper's setup: λ = 1 job/s, mean service 0.1 s, power-down after
    // T = 0.5 s idle, power-up takes D = 1 ms (paper Table 2 / Fig. 4).
    let params = CpuModelParams::paper_defaults()
        .with_power_down_threshold(0.5)
        .with_replications(16)
        .with_horizon(2000.0)
        .with_warmup(100.0);

    let markov = MarkovCpuModel::new(params)
        .evaluate()
        .expect("markov evaluates");
    let petri = PetriCpuModel::new(params)
        .evaluate()
        .expect("petri evaluates");
    let des = DesCpuModel::new(params).evaluate().expect("des evaluates");

    println!("Steady-state occupancy (λ=1/s, μ=10/s, T=0.5 s, D=1 ms):\n");
    for eval in [&des, &markov, &petri] {
        println!(
            "  {:<10} {}   [evaluated in {:.3} ms]",
            eval.kind.to_string(),
            eval.fractions,
            eval.eval_seconds * 1000.0
        );
    }

    let pxa = PowerProfile::pxa271();
    println!("\nEnergy over 1000 s on an Intel PXA271 (paper Table 3 rates):");
    for eval in [&des, &markov, &petri] {
        println!(
            "  {:<10} {:>8.2} J  (mean draw {:>6.2} mW)",
            eval.kind.to_string(),
            eval.energy_joules(&pxa, 1000.0),
            eval.mean_power_mw(&pxa)
        );
    }

    let battery = Battery::two_aa();
    println!("\nBattery lifetime on 2×AA cells at that draw:");
    for eval in [&des, &markov, &petri] {
        let days = battery.lifetime_days(eval.mean_power_mw(&pxa));
        println!("  {:<10} {days:>7.1} days", eval.kind.to_string());
    }

    println!("\nQueueing view (Markov closed forms, Eqs. 21–22):");
    let m = MarkovCpuModel::new(params).inner().expect("valid params");
    println!("  mean jobs in system L(1) = {:.4}", m.mean_jobs());
    println!("  mean latency     τ = L/λ = {:.4} s", m.mean_latency());
}
