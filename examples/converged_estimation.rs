//! Domain scenario 5 — "how long must the Petri net simulate?"
//!
//! The paper's §6 drawback is the open-ended simulation time TimeNET needs
//! before percentages stabilize. This example uses the sequential-stopping
//! API: replications are added automatically until every state estimate has
//! a 95% confidence interval tighter than 2% relative — and prints the
//! structural report + Graphviz source of the net being solved.
//!
//! Run with: `cargo run --release --example converged_estimation`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::{build_cpu_edspn, CpuModel, CpuModelParams, MarkovCpuModel};
use wsnem::petri::analysis::{conflict_sets, is_free_choice};
use wsnem::petri::sim::{simulate_until_precise, PrecisionTarget};
use wsnem::petri::{to_dot, Reward, SimConfig};

fn main() {
    let params = CpuModelParams::paper_defaults();
    let (net, h) = build_cpu_edspn(
        params.lambda,
        params.mu,
        params.power_down_threshold,
        params.power_up_delay,
    )
    .expect("paper net builds");

    // Structure first: the engine can tell you *why* this net needs
    // priorities (it is not free choice — three transitions compete for
    // CPU_ON under different guards).
    println!("Structural report of the Fig. 3 net:");
    println!("  free choice: {}", is_free_choice(&net));
    for (p, ts) in conflict_sets(&net) {
        let names: Vec<&str> = ts.iter().map(|t| net.transition_name(*t)).collect();
        println!("  conflict at {}: {}", net.place_name(p), names.join(", "));
    }

    // The same four rewards the comparison harness uses.
    let (sb, pu, on, ac) = (h.stand_by, h.power_up, h.cpu_on, h.active);
    let rewards = vec![
        Reward::indicator("standby", move |m| m.tokens(sb) >= 1),
        Reward::indicator("powerup", move |m| m.tokens(pu) >= 1),
        Reward::indicator("idle", move |m| m.tokens(on) >= 1 && m.tokens(ac) == 0),
        Reward::indicator("active", move |m| m.tokens(ac) >= 1),
    ];

    let cfg = SimConfig {
        horizon: 1000.0, // the paper's per-run horizon
        warmup: 50.0,
        ..SimConfig::default()
    };
    let target = PrecisionTarget {
        rel_half_width: 0.02,
        ..PrecisionTarget::default()
    };
    let run =
        simulate_until_precise(&net, &cfg, &rewards, target, 2008, None).expect("simulation runs");

    println!(
        "\nConverged after {} replications of {} s (converged = {}):",
        run.summary.replications(),
        cfg.horizon,
        run.converged
    );
    for (r, ci) in rewards.iter().zip(&run.intervals) {
        println!(
            "  {:<8} {:6.3}% +/- {:.3} pp (95% CI)",
            r.name,
            ci.mean * 100.0,
            ci.half_width * 100.0
        );
    }

    // Cross-check against the closed form the paper derives.
    let exact = MarkovCpuModel::new(params)
        .evaluate()
        .expect("markov evaluates");
    println!(
        "\nClosed-form (supplementary variables): {}",
        exact.fractions
    );

    println!("\nGraphviz source (render with `dot -Tpng`):\n");
    let dot = to_dot(&net);
    for line in dot.lines().take(12) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", dot.lines().count());
}
