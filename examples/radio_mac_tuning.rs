//! Domain scenario — choosing a duty-cycle MAC for a deployment.
//!
//! The CPU-side question of `duty_cycle_tuning` has a radio-side twin:
//! given a sensing rate, which MAC keeps the mote alive longest? Duty
//! cycling is a rendezvous tradeoff — receivers that wake rarely are cheap
//! to *run* but expensive to *reach* (senders pay preambles or strobes that
//! span the check interval) — so the ranking flips with traffic: a sparse
//! sampler wants a long check interval, a busy one wants short rendezvous.
//!
//! Run with: `cargo run --release --example radio_mac_tuning`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::wsn::{BackendId, NodeConfig, RadioSpec};

fn candidates() -> Vec<(&'static str, RadioSpec)> {
    vec![
        (
            "always-on (no MAC)",
            RadioSpec::Preset("cc2420-always-on".into()),
        ),
        ("LPL 100 ms / 5 ms", RadioSpec::default()),
        (
            "B-MAC, 100 ms check",
            RadioSpec::BMac {
                check_interval_s: 0.1,
                preamble_s: 0.1,
            },
        ),
        (
            "B-MAC, 500 ms check",
            RadioSpec::BMac {
                check_interval_s: 0.5,
                preamble_s: 0.5,
            },
        ),
        (
            "X-MAC, 500 ms check",
            RadioSpec::XMac {
                check_interval_s: 0.5,
                strobe_s: 0.004,
                ack_s: 0.001,
            },
        ),
    ]
}

fn rank(label: &str, period_s: f64) {
    println!("{label} (one reading per {period_s} s):");
    let mut rows: Vec<(String, f64, f64)> = candidates()
        .into_iter()
        .map(|(name, spec)| {
            let mut node = NodeConfig::monitoring("mote", period_s);
            node.radio = spec.lower().expect("candidate specs are valid");
            let a = node.analyze(BackendId::Markov).expect("node analyzes");
            (name.to_owned(), a.radio_power_mw, a.lifetime_days)
        })
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (i, (name, radio_mw, days)) in rows.iter().enumerate() {
        let marker = if i == 0 { "  <== longest-lived" } else { "" };
        println!("  {name:<22} radio {radio_mw:>7.3} mW  lifetime {days:>6.2} d{marker}");
    }
    println!();
}

fn main() {
    // A sparse environmental sampler: the radio idles almost always, so
    // the cheapest *listener* wins — a long check interval, with B-MAC's
    // 2.5 ms channel sample just edging out X-MAC's strobe+ack window.
    rank("Sparse sampler", 60.0);

    // A busy monitoring node: every packet pays the rendezvous, so long
    // check intervals backfire (a 500 ms preamble or strobe train per
    // packet) and the short-interval MACs take over.
    rank("Busy sampler", 0.5);

    println!(
        "Takeaway: the MAC is a workload decision. Sweep it per scenario with\n\
         `wsnem run --builtin lpl-period-sweep` or inspect any spec with\n\
         `wsnem radio --preset cc2420-class`."
    );
}
