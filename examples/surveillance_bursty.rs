//! Domain scenario 4 — surveillance traffic is bursty, not Poisson (the
//! VigilNet setting the paper's introduction cites [6]).
//!
//! The workload itself now lives in the scenario library as the built-in
//! `surveillance-bursty` scenario (see `wsnem list` / `wsnem run --builtin
//! surveillance-bursty`); this example drives it through the scenario
//! runner and reads the distortion off the agreement report, then adds the
//! MMPP day/night variant by editing the scenario in place — the
//! "re-parameterize without recompiling" workflow the subsystem exists for.
//!
//! Run with: `cargo run --release --example surveillance_bursty`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_scenario::{builtin, runner, Backend, ScenarioReport, WorkloadSpec};

fn backend_of(report: &ScenarioReport, backend: Backend) -> &wsnem_scenario::BackendReport {
    report
        .backends
        .iter()
        .find(|b| b.backend == backend)
        .expect("backend present")
}

fn print_line(label: &str, b: &wsnem_scenario::BackendReport) {
    println!(
        "  {label:<34} standby {:>5.1}%  idle {:>5.1}%  active {:>4.1}%  ->  {:>6.2} mW",
        b.fractions.standby * 100.0,
        (b.fractions.powerup + b.fractions.idle) * 100.0,
        b.fractions.active * 100.0,
        b.mean_power_mw,
    );
}

fn main() {
    let scenario = builtin::find("surveillance-bursty").expect("built-in scenario");
    println!("Surveillance node, mean arrival rate 1 detection/s, T = 0.5 s, D = 1 ms:\n");

    let report = runner::run_scenario(&scenario).expect("scenario runs");
    let markov = backend_of(&report, Backend::Markov); // Poisson approximation
    let des = backend_of(&report, Backend::Des); // real burst process
    print_line("Poisson arrivals (Markov model)", markov);
    print_line("Bursty on-off (target transits)", des);
    let (poisson, bursty) = (markov.mean_power_mw, des.mean_power_mw);

    // MMPP day/night variant: same scenario, different workload — in the
    // file-based workflow this is a one-line edit, no recompilation.
    let mut mmpp_scenario = scenario.clone();
    mmpp_scenario.name = "surveillance-mmpp".into();
    mmpp_scenario.workload = Some(WorkloadSpec::Mmpp2 {
        rate0: 1.8,
        rate1: 0.2,
        switch01: 0.01,
        switch10: 0.01,
    });
    let mmpp_report = runner::run_scenario(&mmpp_scenario).expect("scenario runs");
    let mmpp_des = backend_of(&mmpp_report, Backend::Des);
    print_line("MMPP day/night modulation", mmpp_des);
    let mmpp = mmpp_des.mean_power_mw;

    println!("\nAt equal mean load, burstiness changes the power picture:");
    println!(
        "  bursty vs Poisson: {:+.1}%   (long quiet gaps -> more standby, deeper savings)",
        (bursty / poisson - 1.0) * 100.0
    );
    println!(
        "  MMPP  vs Poisson: {:+.1}%",
        (mmpp / poisson - 1.0) * 100.0
    );
    for a in &report.agreement {
        println!(
            "  agreement report: Δ({} vs {}) = {:.1} pp, energy {:+.1}%",
            a.backend,
            a.reference,
            a.mean_abs_delta_pp,
            100.0 * a.energy_rel_error
        );
    }
    println!("\nA model calibrated on Poisson arrivals would misbudget the battery —");
    println!("this is why the scenario library ships workload generators beyond the paper's.");
}
