//! Domain scenario 4 — surveillance traffic is bursty, not Poisson (the
//! VigilNet setting the paper's introduction cites [6]).
//!
//! A surveillance node sees nothing for minutes, then a target transit
//! produces a burst of detections. The closed-form models assume Poisson
//! arrivals; the DES substrate can simulate the real burst process. This
//! example measures how much the Poisson assumption distorts the energy
//! estimate at equal mean rate.
//!
//! Run with: `cargo run --release --example surveillance_bursty`

use wsnem::des::cpu::{CpuDes, CpuSimParams};
use wsnem::des::replication::run_replications;
use wsnem::des::workload::{OpenWorkload, Workload};
use wsnem::energy::PowerProfile;
use wsnem::stats::dist::Dist;

fn evaluate(workload: Workload, label: &str, profile: &PowerProfile) -> f64 {
    let params = CpuSimParams {
        horizon: 20_000.0,
        warmup: 1000.0,
        ..CpuSimParams::exponential_service(10.0, 0.5, 0.001)
    };
    let sim = CpuDes::new(params, workload).expect("sim builds");
    let summary = run_replications(&sim, 16, 7, None);
    let fr = summary.mean_fractions();
    let power = profile.mean_power_mw(&fr);
    println!(
        "  {label:<34} standby {:>5.1}%  idle {:>5.1}%  active {:>4.1}%  ->  {power:>6.2} mW",
        fr.standby * 100.0,
        fr.powerup * 100.0 + fr.idle * 100.0,
        fr.active * 100.0
    );
    power
}

fn main() {
    let profile = PowerProfile::pxa271();
    println!("Surveillance node, mean arrival rate 1 detection/s, T = 0.5 s, D = 1 ms:\n");

    // Poisson baseline (what the Markov and PN models assume).
    let poisson = evaluate(
        Workload::open_poisson(1.0),
        "Poisson arrivals",
        &profile,
    );

    // Bursty: 20 s quiet, 4 s transits at 6 detections/s (same mean ~1/s).
    let bursty = evaluate(
        Workload::Open(OpenWorkload::BurstyOnOff {
            on: Dist::Deterministic(4.0),
            off: Dist::Deterministic(20.0),
            rate_on: 6.0,
        }),
        "Bursty on-off (target transits)",
        &profile,
    );

    // MMPP: a smoother two-mode day/night pattern, same mean rate.
    let mmpp = evaluate(
        Workload::Open(OpenWorkload::Mmpp2 {
            rate0: 1.8,
            rate1: 0.2,
            switch01: 0.01,
            switch10: 0.01,
        }),
        "MMPP day/night modulation",
        &profile,
    );

    println!("\nAt equal mean load, burstiness changes the power picture:");
    println!(
        "  bursty vs Poisson: {:+.1}%   (long quiet gaps -> more standby, deeper savings)",
        (bursty / poisson - 1.0) * 100.0
    );
    println!(
        "  MMPP  vs Poisson: {:+.1}%",
        (mmpp / poisson - 1.0) * 100.0
    );
    println!("\nA model calibrated on Poisson arrivals would misbudget the battery —");
    println!("this is why the repository ships workload generators beyond the paper's.");
}
