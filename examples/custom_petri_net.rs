//! Domain scenario 3 — the EDSPN engine as a general tool: build a custom
//! net (a bounded producer–consumer), check its invariants, evaluate it two
//! independent ways (exact CTMC vs token-game simulation), and round-trip it
//! through the serializable spec format.
//!
//! Run with: `cargo run --release --example custom_petri_net`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::petri::analysis::{p_semiflows, tangible_chain, ReachOptions};
use wsnem::petri::models::producer_consumer_net;
use wsnem::petri::{simulate_replications, Reward, SimConfig};

fn main() {
    let capacity = 8;
    let (net, buffer, free) = producer_consumer_net(capacity, 3.0, 4.0).expect("net builds");

    // 1. Structure: the Farkas analyzer proves Buffer + FreeSlots = capacity.
    println!("P-invariants of the producer-consumer net:");
    for inv in p_semiflows(&net).expect("invariants computable") {
        let terms: Vec<String> = net
            .places()
            .filter(|p| inv[p.index()] > 0)
            .map(|p| net.place_name(p).to_owned())
            .collect();
        println!(
            "  {} = {}",
            terms.join(" + "),
            net.initial_marking().weighted_sum(&inv)
        );
    }

    // 2. Exact analysis: vanishing elimination + CTMC steady state.
    let chain = tangible_chain(&net, ReachOptions::default()).expect("chain builds");
    let pi = chain.steady_state().expect("steady state solves");
    let exact_occupancy = chain.expected_tokens(&pi, buffer);
    println!("\nExact (CTMC) mean buffer occupancy:      {exact_occupancy:.5}");

    // 3. Simulation: replicated token game with a fullness reward.
    let full = Reward::indicator("buffer full", move |m| m.tokens(buffer) == capacity);
    let cfg = SimConfig {
        horizon: 20_000.0,
        warmup: 500.0,
        ..SimConfig::default()
    };
    let summary = simulate_replications(&net, &cfg, &[full], 8, 42, None).expect("simulation runs");
    println!(
        "Simulated mean buffer occupancy:         {:.5}  (8 replications x 20000 s)",
        summary.place_mean(buffer.index())
    );
    let exact_full: f64 = chain
        .markings
        .iter()
        .zip(&pi)
        .filter(|(m, _)| m.tokens(buffer) == capacity)
        .map(|(_, p)| p)
        .sum();
    let ci = summary.reward_ci(0, 0.95).expect("enough replications");
    println!(
        "P(buffer full): exact {exact_full:.5} vs simulated {:.5} +/- {:.5}",
        ci.mean, ci.half_width
    );
    let _ = free;

    // 4. Persistence: nets serialize to a JSON spec and rebuild identically.
    let spec = net.to_spec();
    let json = serde_json::to_string_pretty(&spec).expect("serializes");
    let rebuilt = serde_json::from_str::<wsnem::petri::NetSpec>(&json)
        .expect("deserializes")
        .build()
        .expect("rebuilds");
    assert_eq!(rebuilt, net);
    println!(
        "\nSpec round-trip OK ({} bytes of JSON describe the net).",
        json.len()
    );
}
