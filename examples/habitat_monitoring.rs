//! Domain scenario 2 — a habitat-monitoring star network (the Great Duck
//! Island setting the paper's introduction cites [10, 12]).
//!
//! Eight nodes report temperature/humidity readings to a sink. Interior
//! nodes sense every 60 s; two gateway-adjacent nodes also forward traffic;
//! one "weather station" node samples at 2 Hz. Which node dies first, and
//! what would halving its sensing rate buy?
//!
//! Run with: `cargo run --release --example habitat_monitoring`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::wsn::BackendId;
use wsnem::wsn::{NodeConfig, StarNetwork};

fn build_network(station_period: f64) -> StarNetwork {
    let mut nodes = Vec::new();
    for i in 0..5 {
        nodes.push(NodeConfig::monitoring(format!("interior-{i}"), 60.0));
    }
    for i in 0..2 {
        let mut n = NodeConfig::monitoring(format!("relay-{i}"), 60.0);
        n.rx_rate = 0.2; // forwarded packets per second
        n.tx_per_event = 2.0; // own reading + forwarded batch
        nodes.push(n);
    }
    nodes.push(NodeConfig::monitoring("weather-station", station_period));
    StarNetwork { nodes }
}

fn main() {
    let net = build_network(0.5);
    let analysis = net.analyze(BackendId::Markov).expect("analysis runs");

    println!(
        "Habitat-monitoring star network (8 nodes, 2xAA each, PXA271 + CC2420-class radio):\n"
    );
    println!(
        "  {:<16} {:>10} {:>10} {:>10} {:>12}",
        "node", "cpu (mW)", "radio (mW)", "total (mW)", "life (days)"
    );
    for n in &analysis.per_node {
        println!(
            "  {:<16} {:>10.3} {:>10.3} {:>10.3} {:>12.1}",
            n.name, n.cpu_power_mw, n.radio_power_mw, n.total_power_mw, n.lifetime_days
        );
    }
    let bottleneck = analysis.bottleneck().expect("non-empty network");
    println!(
        "\n  Network lifetime (first death): {:.1} days — bottleneck: {}",
        analysis.first_death_days(),
        bottleneck.name
    );
    println!(
        "  Mean node lifetime:             {:.1} days",
        analysis.mean_lifetime_days()
    );

    // What-if: halve the weather station's sampling rate.
    let slower = build_network(1.0);
    let slower_analysis = slower.analyze(BackendId::Markov).expect("analysis runs");
    println!(
        "\nWhat-if: weather station samples at 1 Hz instead of 2 Hz:\n  network lifetime {:.1} -> {:.1} days ({:+.1}%)",
        analysis.first_death_days(),
        slower_analysis.first_death_days(),
        (slower_analysis.first_death_days() / analysis.first_death_days() - 1.0) * 100.0
    );
    println!(
        "\nNote the paper's observation holds: the radio dominates ({}'s split above),\nbut the CPU share is what the Power-Down-Threshold policy controls.",
        bottleneck.name
    );
}
