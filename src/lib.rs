//! # wsnem — Energy Modeling of WSN Processors with Petri Nets
//!
//! A full reproduction of *Shareef & Zhu, "Energy Modeling of Processors in
//! Wireless Sensor Networks based on Petri Nets" (ICPP 2008)* as a production
//! Rust workspace. This crate is a thin facade that re-exports every layer of
//! the stack under one name:
//!
//! * [`stats`] — deterministic RNG streams, distributions, online statistics.
//! * [`petri`] — an Extended Deterministic and Stochastic Petri Net (EDSPN)
//!   engine with structural analysis and a GSPN→CTMC bridge (the paper used
//!   TimeNET 4.0; this is the from-scratch substitute).
//! * [`markov`] — CTMC substrate and the paper's supplementary-variable
//!   closed-form processor model.
//! * [`obs`] — zero-cost observer hooks for both simulation kernels, NDJSON
//!   tracing, sojourn timelines and counters.
//! * [`des`] — a discrete-event simulation kernel and the CPU power-state
//!   simulator used as ground truth (the paper used a Matlab simulator).
//! * [`energy`] — power profiles (PXA271 and friends), energy accounting and
//!   battery lifetime models.
//! * [`core`] — the paper's contribution: the three CPU models behind one
//!   trait plus the experiment harness regenerating every table and figure.
//! * [`wsn`] — sensor-node and network-level studies built on the CPU models.
//!
//! ## Quickstart
//!
//! ```
//! use wsnem::core::{CpuModelParams, MarkovCpuModel, DesCpuModel, PetriCpuModel, CpuModel};
//! use wsnem::energy::PowerProfile;
//!
//! let params = CpuModelParams::paper_defaults().with_power_down_threshold(0.5);
//! let markov = MarkovCpuModel::new(params).evaluate().unwrap();
//! let des = DesCpuModel::new(params).evaluate().unwrap();
//! let pn = PetriCpuModel::new(params).evaluate().unwrap();
//! let pxa = PowerProfile::pxa271();
//! println!("Markov energy: {:.2} J", markov.energy_joules(&pxa, 1000.0));
//! println!("DES energy:    {:.2} J", des.energy_joules(&pxa, 1000.0));
//! println!("Petri energy:  {:.2} J", pn.energy_joules(&pxa, 1000.0));
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub use wsnem_core as core;
pub use wsnem_des as des;
pub use wsnem_energy as energy;
pub use wsnem_markov as markov;
pub use wsnem_obs as obs;
pub use wsnem_petri as petri;
pub use wsnem_stats as stats;
pub use wsnem_wsn as wsn;
